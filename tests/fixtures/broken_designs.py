"""Deliberately broken designs for exercising the lint rules.

Every fixture here violates exactly one design rule (plus whatever that
implies) and is built *without* running the construction-time
validators: circuits come from ``CircuitBuilder.circuit`` (the
unvalidated container) or are tampered with after a valid build, plans
and schedules are corrupted after construction.  None of these are
registered with the example-design registry -- ``repro lint SystemN``
never sees them.

Keep each builder minimal: the lint tests assert that the *named* rule
fires on its fixture, so an incidental second violation makes the test
ambiguous.
"""

from __future__ import annotations

import dataclasses

from repro.rtl import CircuitBuilder, OpKind, Slice
from repro.rtl.types import Concat
from repro.schedule import ScheduledTest, TestSchedule
from repro.soc import Core, Soc, plan_soc_test


# ----------------------------------------------------------------------
# circuit-scope fixtures (rtl.*)
# ----------------------------------------------------------------------
def comb_loop_circuit():
    """Two NOT gates feeding each other: rtl.comb-loop."""
    b = CircuitBuilder("combloop")
    din = b.input("DIN", 1)
    a = b.op("A", OpKind.NOT, [Slice("B", 0, 1)], width=1)
    b.op("B", OpKind.NOT, [a], width=1)
    b.output("O", din)
    return b.circuit()


def undriven_circuit():
    """A register that nothing drives: rtl.undriven."""
    b = CircuitBuilder("undriven")
    din = b.input("DIN", 4)
    b.register("R", 4)
    b.output("O", din)
    return b.circuit()


def width_mismatch_circuit():
    """An 8-bit register rewired to a 4-bit driver: rtl.width-mismatch."""
    b = CircuitBuilder("widths")
    din = b.input("DIN", 8)
    r = b.register("R", 8)
    b.drive(r, din)
    b.output("O", r)
    circuit = b.build()
    circuit.get("R").driver = Slice("DIN", 0, 4)
    return circuit


def unreachable_register_circuit():
    """A register fed only by itself, no reset: rtl.unreachable-reg.

    Structurally legal (the self-loop runs through a flip-flop), so this
    one survives ``build()`` -- the point of the warning rule.
    """
    b = CircuitBuilder("unreach")
    din = b.input("DIN", 4)
    r = b.register("R", 4)
    b.drive(r, r)
    b.output("O", din)
    return b.build()


# ----------------------------------------------------------------------
# SOC-scope fixtures (soc.*, trans.*)
# ----------------------------------------------------------------------
def _passthrough(name: str, width: int = 8, depth: int = 1):
    b = CircuitBuilder(name)
    previous = b.input("IN", width)
    for i in range(depth):
        reg = b.register(f"R{i}", width)
        b.drive(reg, previous)
        previous = reg
    b.output("OUT", previous)
    return b.build()


def _single_core_soc(name: str = "broken") -> Soc:
    soc = Soc(name)
    soc.add_core(Core.from_circuit(_passthrough("A"), test_vectors=4))
    soc.add_input("PIN", 8)
    soc.add_output("POUT", 8)
    soc.wire(None, "PIN", "A", "IN")
    soc.wire("A", "OUT", None, "POUT")
    return soc


def partially_driven_soc() -> Soc:
    """Core input with only half its bits wired: soc.input-drivers."""
    soc = Soc("halfwired")
    soc.add_core(Core.from_circuit(_passthrough("A"), test_vectors=4))
    soc.add_input("PIN", 8)
    soc.add_output("POUT", 8)
    soc.wire(None, "PIN", "A", "IN", width=4)
    soc.wire("A", "OUT", None, "POUT")
    return soc


def doubly_driven_soc() -> Soc:
    """Two nets landing on the same input bits: soc.input-drivers."""
    soc = _single_core_soc("doubledriver")
    soc.wire(None, "PIN", "A", "IN", width=4)
    return soc


def uncovered_input_soc() -> Soc:
    """A version whose input lost its propagate path: trans.input-propagation."""
    soc = _single_core_soc("uncovered")
    version = soc.cores["A"].versions[0]
    del version.propagate_paths["IN"]
    return soc


def unjustified_output_soc() -> Soc:
    """A version whose output slice lost its justify path: trans.output-justification."""
    soc = _single_core_soc("unjustified")
    version = soc.cores["A"].versions[0]
    key = sorted(version.justify_paths)[0]
    del version.justify_paths[key]
    return soc


def lying_latency_soc() -> Soc:
    """A propagate path claiming 0 cycles through a register: trans.latency-overrun."""
    soc = _single_core_soc("lyinglatency")
    version = soc.cores["A"].versions[0]
    path = version.propagate_paths["IN"]
    version.propagate_paths["IN"] = dataclasses.replace(path, latency=0)
    return soc


# ----------------------------------------------------------------------
# certifier fixtures (analysis.*)
# ----------------------------------------------------------------------
def narrowed_transparency_soc() -> Soc:
    """A core whose netlist diverged after version generation.

    The versions were generated while R0 loaded ``{INHI, INLO}``; the
    shipped circuit routes the upper nibble through an inverter instead,
    so the declared full-width justify/propagate paths claim 8 bits of
    transport where the hardware only carries 4.  The certifier refutes
    them with slice-level diagnostics (analysis.slice-provenance) and
    the differential replay observes the inverted nibble.
    """
    b = CircuitBuilder("A")
    lo = b.input("INLO", 4)
    hi = b.input("INHI", 4)
    inv = b.op("INV", OpKind.NOT, [hi], width=4)
    r = b.register("R0", 8)
    b.drive(r, Concat((lo, hi)))
    b.output("OUT", r)
    b.output("NOUT", inv)
    core = Core.from_circuit(b.build(), test_vectors=4)
    # tamper: the upper nibble now physically routes through the inverter
    core.circuit.get("R0").driver = Concat((Slice("INLO", 0, 4), Slice("INV", 0, 4)))

    soc = Soc("narrowed")
    soc.add_core(core)
    soc.add_input("PINL", 4)
    soc.add_input("PINH", 4)
    soc.add_output("POUT", 8)
    soc.add_output("PNOUT", 4)
    soc.wire(None, "PINL", "A", "INLO")
    soc.wire(None, "PINH", "A", "INHI")
    soc.wire("A", "OUT", None, "POUT")
    soc.wire("A", "NOUT", None, "PNOUT")
    return soc


def mux_conflict_soc() -> Soc:
    """A justify path that forces one mux onto both of its legs.

    Each of MX's legs is transparent on a different nibble (the other
    nibble is inverted), so justifying the full 8-bit output needs leg 0
    for the low word and leg 1 for the high word -- the same select in
    one cycle.  The generator emits that path anyway; the certifier's
    unit-propagation solver refutes it (analysis.mux-conflict) and
    ``apply_transparency_path`` refuses to realize the mode.  The second
    register stage keeps the output a single full-width justify key.
    """
    b = CircuitBuilder("A")
    a_in = b.input("AIN", 4)
    b_in = b.input("BIN", 4)
    sel = b.input("SEL", 1)
    na = b.op("NA", OpKind.NOT, [a_in], width=4)
    nb = b.op("NB", OpKind.NOT, [b_in], width=4)
    m = b.mux("MX", [Concat((a_in, na)), Concat((nb, b_in))], sel, width=8)
    r = b.register("R", 8)
    b.drive(r, m)
    r2 = b.register("R2", 8)
    b.drive(r2, r)
    b.output("OUT", r2)

    soc = Soc("muxconflict")
    soc.add_core(Core.from_circuit(b.build(), test_vectors=4))
    soc.add_input("PA", 4)
    soc.add_input("PB", 4)
    soc.add_input("PSEL", 1)
    soc.add_output("POUT", 8)
    soc.wire(None, "PA", "A", "AIN")
    soc.wire(None, "PB", "A", "BIN")
    soc.wire(None, "PSEL", "A", "SEL")
    soc.wire("A", "OUT", None, "POUT")
    return soc


def shared_select_soc() -> Soc:
    """Two muxes on one select net, demanded opposite ways: advisory only.

    M0 is transparent on leg 0 and M1 on leg 1, both selected by SEL.
    The full-width justify path needs M0=0 and M1=1 simultaneously --
    unrealizable on the functional select net, but fine in test mode
    because ``apply_transparency_path`` gives each mux its own
    ``tsel_*`` override.  The certifier reports
    analysis.select-sharing at INFO and still proves the path.
    """
    b = CircuitBuilder("A")
    a_in = b.input("AIN", 4)
    b_in = b.input("BIN", 4)
    sel = b.input("SEL", 1)
    na = b.op("NA", OpKind.NOT, [a_in], width=4)
    nb = b.op("NB", OpKind.NOT, [b_in], width=4)
    m0 = b.mux("M0", [a_in, na], sel, width=4)
    m1 = b.mux("M1", [nb, b_in], sel, width=4)
    r = b.register("R0", 8)
    b.drive(r, Concat((m0, m1)))
    r2 = b.register("R1", 8)
    b.drive(r2, r)
    b.output("OUT", r2)

    soc = Soc("sharedselect")
    soc.add_core(Core.from_circuit(b.build(), test_vectors=4))
    soc.add_input("PA", 4)
    soc.add_input("PB", 4)
    soc.add_input("PSEL", 1)
    soc.add_output("POUT", 8)
    soc.wire(None, "PA", "A", "AIN")
    soc.wire(None, "PB", "A", "BIN")
    soc.wire(None, "PSEL", "A", "SEL")
    soc.wire("A", "OUT", None, "POUT")
    return soc


# ----------------------------------------------------------------------
# plan-scope fixtures (plan.*)
# ----------------------------------------------------------------------
def _chain_soc(name: str = "chain") -> Soc:
    """PI -> A(depth 2) -> B(depth 1) -> PO; B's test borrows A's transparency."""
    soc = Soc(name)
    soc.add_core(Core.from_circuit(_passthrough("A", depth=2), test_vectors=4))
    soc.add_core(Core.from_circuit(_passthrough("B", depth=1), test_vectors=4))
    soc.add_input("PIN", 8)
    soc.add_output("POUT", 8)
    soc.wire(None, "PIN", "A", "IN")
    soc.wire("A", "OUT", "B", "IN")
    soc.wire("B", "OUT", None, "POUT")
    return soc


def tampered_cadence_plan():
    """A core plan's cadence squeezed below its reservations: plan.reservation-overlap."""
    plan = plan_soc_test(_chain_soc("squeezedcadence"))
    victim = max(plan.core_plans.values(), key=lambda cp: cp.cadence)
    victim.cadence = 1 if victim.cadence > 1 else 0
    return plan


def mux_unrecorded_plan():
    """A delivery claiming a test-mux fallback nobody recorded: plan.mux-unrecorded."""
    plan = plan_soc_test(_chain_soc("phantommux"))
    delivery = plan.core_plans["B"].deliveries[0]
    delivery.via_test_mux = True
    return plan


def tat_inconsistent_plan():
    """Flush and scan-step counts that contradict the core: plan.tat-consistency."""
    plan = plan_soc_test(_chain_soc("cookedtat"))
    core_plan = plan.core_plans["A"]
    core_plan.scan_steps += 7
    core_plan.flush += 3
    return plan


def bad_selection_plan():
    """A selection naming a version the core does not have: plan.selection-range."""
    plan = plan_soc_test(_chain_soc("badselection"))
    plan.selection["A"] = 99
    return plan


# ----------------------------------------------------------------------
# schedule-scope fixtures (sched.*)
# ----------------------------------------------------------------------
def double_booked_schedule() -> TestSchedule:
    """Chained cores forced to start together: sched.resource-conflict."""
    plan = plan_soc_test(_chain_soc("doublebooked"))
    good = plan.schedule()
    entries = [ScheduledTest(item=e.item, start=0) for e in good.entries]
    return TestSchedule(soc_name=plan.soc.name, algorithm="manual", entries=entries)


def over_budget_schedule() -> TestSchedule:
    """A valid schedule re-labelled with an impossible power budget: sched.power-budget."""
    plan = plan_soc_test(_chain_soc("overbudget"))
    good = plan.schedule()
    return TestSchedule(
        soc_name=plan.soc.name,
        algorithm="manual",
        entries=list(good.entries),
        power_budget=1,
    )
