"""Test-only fixtures; deliberately broken designs live in broken_designs."""
