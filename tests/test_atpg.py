"""Tests for PODEM, the combinational ATPG driver, compaction, and unrolling."""

import pytest

from repro.atpg import CombinationalAtpg, PodemStatus, SequentialAtpg, compact_patterns, podem, unroll
from repro.faults import Fault, FaultSimulator, collapse_faults, full_fault_universe
from repro.gates import GateKind, GateNetlist


def c17_like():
    """A small NAND network in the spirit of ISCAS c17."""
    n = GateNetlist("c17")
    for name in ["i1", "i2", "i3", "i4", "i5"]:
        n.add_gate(name, GateKind.INPUT)
    n.add_gate("n1", GateKind.NAND, ["i1", "i3"])
    n.add_gate("n2", GateKind.NAND, ["i3", "i4"])
    n.add_gate("n3", GateKind.NAND, ["i2", "n2"])
    n.add_gate("n4", GateKind.NAND, ["n2", "i5"])
    n.add_gate("n5", GateKind.NAND, ["n1", "n3"])
    n.add_gate("n6", GateKind.NAND, ["n3", "n4"])
    n.add_gate("O1", GateKind.OUTPUT, ["n5"])
    n.add_gate("O2", GateKind.OUTPUT, ["n6"])
    return n.validate()


def redundant_netlist():
    """y = a OR (a AND b): the AND branch is redundant for some faults."""
    n = GateNetlist("red")
    n.add_gate("a", GateKind.INPUT)
    n.add_gate("b", GateKind.INPUT)
    n.add_gate("g", GateKind.AND, ["a", "b"])
    n.add_gate("y", GateKind.OR, ["a", "g"])
    n.add_gate("Y", GateKind.OUTPUT, ["y"])
    return n.validate()


class TestPodem:
    def test_detects_simple_fault(self):
        n = c17_like()
        result = podem(n, Fault("n1", None, 1))
        assert result.status is PodemStatus.DETECTED
        # verify with the fault simulator
        pattern = {f"i{k}": result.assignment.get(f"i{k}", 0) for k in range(1, 6)}
        sim = FaultSimulator(n)
        graded = sim.run([pattern], [Fault("n1", None, 1)])
        assert graded.detected

    def test_every_collapsed_fault_handled(self):
        n = c17_like()
        faults = collapse_faults(n, full_fault_universe(n))
        sim = FaultSimulator(n)
        for fault in faults:
            result = podem(n, fault)
            assert result.status in (PodemStatus.DETECTED, PodemStatus.REDUNDANT)
            if result.status is PodemStatus.DETECTED:
                pattern = {f"i{k}": result.assignment.get(f"i{k}", 0) for k in range(1, 6)}
                assert sim.run([pattern], [fault]).detected, f"{fault} not confirmed"

    def test_redundant_fault_proven(self):
        n = redundant_netlist()
        # g stuck-at-0 is undetectable: with a=0 the OR output is g=0 either way is
        # wrong -- actually a=0 -> g=0 in good machine too; a=1 masks g entirely.
        result = podem(n, Fault("g", None, 0))
        assert result.status is PodemStatus.REDUNDANT

    def test_flop_sources_are_assignable(self):
        n = GateNetlist("seq")
        n.add_gate("a", GateKind.INPUT)
        n.add_gate("f", GateKind.DFF, ["g"])
        n.add_gate("g", GateKind.AND, ["a", "f"])
        n.add_gate("Y", GateKind.OUTPUT, ["g"])
        n.validate()
        result = podem(n, Fault("g", None, 0))
        assert result.status is PodemStatus.DETECTED
        assert result.assignment.get("f") == 1
        assert result.assignment.get("a") == 1

    def test_non_assignable_source_blocks(self):
        n = GateNetlist("blocked")
        n.add_gate("a", GateKind.INPUT)
        n.add_gate("b", GateKind.INPUT)
        n.add_gate("g", GateKind.AND, ["a", "b"])
        n.add_gate("Y", GateKind.OUTPUT, ["g"])
        n.validate()
        # b is not assignable -> a-side faults needing b=1 are unprovable
        result = podem(n, Fault("a", None, 0), assignable={"a"})
        assert result.status is PodemStatus.REDUNDANT

    def test_flop_pin_fault_justification(self):
        n = GateNetlist("seq2")
        n.add_gate("a", GateKind.INPUT)
        n.add_gate("b", GateKind.INPUT)
        n.add_gate("g", GateKind.AND, ["a", "b"])
        n.add_gate("f", GateKind.DFF, ["g"])
        n.add_gate("h", GateKind.OR, ["g", "f"])
        n.add_gate("Y", GateKind.OUTPUT, ["h"])
        n.validate()
        result = podem(n, Fault("f", 0, 0))
        assert result.status is PodemStatus.DETECTED
        assert result.assignment.get("a") == 1 and result.assignment.get("b") == 1


class TestCombinationalAtpg:
    def test_full_coverage_on_c17(self):
        n = c17_like()
        outcome = CombinationalAtpg(n, seed=3).run()
        assert outcome.report.test_efficiency == 100.0
        assert outcome.report.fault_coverage > 95.0
        assert outcome.patterns

    def test_patterns_confirmed_by_fault_sim(self):
        n = c17_like()
        outcome = CombinationalAtpg(n, seed=3).run()
        faults = collapse_faults(n, full_fault_universe(n))
        graded = FaultSimulator(n).run(outcome.patterns, faults)
        assert len(graded.detected) == outcome.report.detected

    def test_redundancy_identified(self):
        n = redundant_netlist()
        outcome = CombinationalAtpg(n, seed=0).run()
        assert outcome.report.redundant >= 1
        assert outcome.report.test_efficiency == 100.0

    def test_deterministic_given_seed(self):
        n = c17_like()
        first = CombinationalAtpg(n, seed=7).run()
        second = CombinationalAtpg(n, seed=7).run()
        assert first.patterns == second.patterns


class TestCompaction:
    def test_compaction_preserves_coverage(self):
        n = c17_like()
        atpg = CombinationalAtpg(n, seed=1, compact=False)
        outcome = atpg.run()
        faults = collapse_faults(n, full_fault_universe(n))
        before = FaultSimulator(n).run(outcome.patterns, faults)
        compacted = compact_patterns(n, outcome.patterns, faults)
        after = FaultSimulator(n).run(compacted, faults)
        assert len(compacted) <= len(outcome.patterns)
        assert len(after.detected) == len(before.detected)

    def test_empty_patterns(self):
        assert compact_patterns(c17_like(), [], []) == []


class TestUnroll:
    def seq_netlist(self):
        n = GateNetlist("seq")
        n.add_gate("a", GateKind.INPUT)
        n.add_gate("f", GateKind.DFF, ["d"])
        n.add_gate("d", GateKind.XOR, ["f", "a"])
        n.add_gate("Y", GateKind.OUTPUT, ["f"])
        return n.validate()

    def test_structure(self):
        u = unroll(self.seq_netlist(), 3)
        assert u.frames == 3
        assert "f0::f" in u.initial_state_inputs
        assert u.netlist.gate("f1::f").kind is GateKind.BUF
        assert u.netlist.gate("f1::f").fanins == ("f0::d",)

    def test_rejects_zero_frames(self):
        with pytest.raises(ValueError):
            unroll(self.seq_netlist(), 0)

    def test_sequential_atpg_runs(self):
        outcome = SequentialAtpg(
            self.seq_netlist(), seed=0, random_sequences=8, sequence_length=6, frames=2
        ).run()
        assert outcome.report.total > 0
        assert outcome.report.detected > 0
