"""Tests for search-effort attribution (:mod:`repro.obs.attrib`) and
the ``repro explain`` driver/CLI built on it."""

import json

import pytest

from repro.errors import AttribSchemaError, LedgerSchemaError, UsageError
from repro.obs import METRICS
from repro.obs.attrib import (
    ATTRIB,
    ATTRIB_MODES,
    AttribCollector,
    artifact_json,
    build_artifact,
    effort_units,
    main as attrib_main,
    require_valid_artifact,
    resolve_attrib_mode,
    validate_artifact,
)

#: bounds test runtime while keeping PODEM backtracking and fault-sim
#: sweeps live on every example core
MAX_FAULTS = 12


@pytest.fixture(autouse=True)
def attribution_off():
    """Every test starts and ends with the module collector disabled."""
    ATTRIB.configure("off")
    ATTRIB.reset()
    yield
    ATTRIB.configure("off")
    ATTRIB.reset()


def explain(system="System1", **kwargs):
    from repro.flow.explain import explain_system

    kwargs.setdefault("max_faults", MAX_FAULTS)
    return explain_system(system, **kwargs)


# ----------------------------------------------------------------------
# mode resolution and the collector
# ----------------------------------------------------------------------
class TestModes:
    def test_resolve_from_values(self):
        assert resolve_attrib_mode("") == "off"
        assert resolve_attrib_mode("0") == "off"
        assert resolve_attrib_mode("OFF") == "off"
        assert resolve_attrib_mode("no") == "off"
        assert resolve_attrib_mode("1") == "on"
        assert resolve_attrib_mode("on") == "on"
        assert resolve_attrib_mode("Yes") == "on"
        assert resolve_attrib_mode("deep") == "deep"

    def test_resolve_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_ATTRIB", raising=False)
        assert resolve_attrib_mode() == "off"
        monkeypatch.setenv("REPRO_ATTRIB", "deep")
        assert resolve_attrib_mode() == "deep"

    def test_bad_value_is_usage_error(self):
        with pytest.raises(UsageError, match="REPRO_ATTRIB"):
            resolve_attrib_mode("sideways")

    def test_configure_rejects_unknown_mode(self):
        with pytest.raises(UsageError):
            AttribCollector().configure("sometimes")

    def test_default_is_off(self):
        collector = AttribCollector()
        assert collector.mode == "off"
        assert not collector.enabled
        assert not collector.deep
        assert "off" in ATTRIB_MODES

    def test_effort_units_weighs_backtracks_double(self):
        assert effort_units(10, 3, 20) == 10 + 6 + 20


class TestCollector:
    def build(self, mode="on"):
        collector = AttribCollector()
        collector.configure(mode)
        collector.podem_record({
            "backtracks": 2, "cone_depth": 3, "decisions": 5, "gate": "g1",
            "gate_kind": "and", "implications": 7, "netlist": "n", "pin": None,
            "restarts": 0, "site": "stem", "status": "detected", "stuck": 0,
        })
        collector.sim_good({"1:and": 2, "2:or": 1}, words=3)
        collector.sim_sweep(40)
        collector.sim_cone({"1:and": 2}, "n::g1")
        collector.move_event(
            kind="upgrade", subject="CPU", version_from=1, version_to=2,
            tat_before=100, tat_after=90, outcome="accept",
            point=(("CPU", 1),),
        )
        return collector

    def test_reset_keeps_mode(self):
        collector = self.build("deep")
        collector.reset()
        assert collector.mode == "deep"
        assert collector.mark() == AttribCollector().mark()

    def test_delta_roundtrip_rebuilds_state(self):
        source = self.build()
        delta = source.delta_since(AttribCollector().mark())
        sink = AttribCollector()
        sink.configure("on")
        sink.merge_delta(delta)
        assert sink.mark() == source.mark()

    def test_idle_delta_is_empty(self):
        collector = self.build()
        assert collector.delta_since(collector.mark()) == {}

    def test_merge_does_not_reincrement_metric_counters(self):
        source = self.build()
        delta = source.delta_since(AttribCollector().mark())
        before = METRICS.counters()["attrib.podem.records"]
        AttribCollector().merge_delta(delta)
        assert METRICS.counters()["attrib.podem.records"] == before

    def test_deep_mode_tracks_cone_sites(self):
        collector = self.build("deep")
        collector.sim_cone({"1:and": 1}, "n::g1")
        assert collector.mark()["cones"] == {"n::g1": 2}

    def test_revisited_point_classifies_as_cache_hit(self):
        collector = self.build()
        collector.move_event(
            kind="upgrade", subject="CPU", version_from=2, version_to=3,
            tat_before=90, tat_after=95, outcome="reject-no-gain",
            point=(("CPU", 1),),
        )
        events = collector.mark()["moves"]
        assert events == 2
        delta = collector.delta_since(AttribCollector().mark())
        assert [event["cache"] for event in delta["moves"]] == ["miss", "hit"]

    def test_hooks_are_noops_when_off(self):
        collector = AttribCollector()
        collector.sim_sweep(10)  # scalars still count; gating is caller-side
        assert not collector.enabled


# ----------------------------------------------------------------------
# plane 1 wiring: PODEM effort records
# ----------------------------------------------------------------------
class TestPodemPlane:
    def test_podem_counts_implications_and_restarts(self):
        from repro.atpg.podem import podem
        from repro.designs import build_gcd
        from repro.elaborate import elaborate
        from repro.faults.model import full_fault_universe

        netlist = elaborate(build_gcd()).netlist
        ATTRIB.configure("on")
        ATTRIB.reset()
        for fault in full_fault_universe(netlist)[:6]:
            result = podem(netlist, fault)
            assert result.implications >= 1
            assert result.restarts >= 0
        records = ATTRIB.delta_since(AttribCollector().mark())["podem"]
        assert len(records) == 6
        for record in records:
            assert record["site"] in ("stem", "pin", "flop-pin")
            assert record["status"] in ("detected", "aborted", "redundant")
            assert record["cone_depth"] >= 0


# ----------------------------------------------------------------------
# the explain driver: artifact validity, reconciliation, determinism
# ----------------------------------------------------------------------
class TestExplain:
    def test_artifact_is_schema_valid(self):
        artifact = explain().artifact
        assert validate_artifact(artifact) == []
        assert require_valid_artifact(artifact) is artifact

    def test_reconciliation_is_exact(self):
        artifact = explain().artifact
        for name, row in sorted(artifact["reconciliation"].items()):
            assert row["ok"], f"{name}: attrib {row['attrib']} != counter {row['counter']}"

    def test_effort_totals_reconcile_with_counters(self):
        report = explain()
        totals = report.artifact["planes"]["atpg"]["totals"]
        assert totals["decisions"] == report.all_counters["atpg.podem.decisions"]
        assert totals["backtracks"] == report.all_counters["atpg.podem.backtracks"]
        sim = report.artifact["planes"]["sim"]
        assert sim["good_batches"] == report.all_counters["faultsim.batches"]
        assert sim["sweep_candidates"] == report.all_counters["faultsim.events"]

    def test_byte_stable_across_runs(self):
        assert explain().artifact_json() == explain().artifact_json()

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_byte_identical_across_job_counts(self, jobs):
        serial = explain(jobs=1).artifact_json()
        assert explain(jobs=jobs).artifact_json() == serial

    @pytest.mark.parametrize(
        "system", ["System1", "System2", "System3", "System4"]
    )
    def test_byte_identical_across_backends(self, system, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_BACKEND", "scalar")
        scalar = explain(system).artifact_json()
        monkeypatch.setenv("REPRO_SIM_BACKEND", "numpy")
        assert explain(system).artifact_json() == scalar

    def test_mode_restored_after_run(self, monkeypatch):
        monkeypatch.delenv("REPRO_ATTRIB", raising=False)
        ATTRIB.configure("deep")
        report = explain()
        assert ATTRIB.mode == "deep"  # session mode restored afterwards
        assert not report.artifact["deep"]  # env off promotes to "on" only
        monkeypatch.setenv("REPRO_ATTRIB", "deep")
        assert explain().artifact["deep"]

    def test_unknown_system_is_usage_error(self):
        with pytest.raises(UsageError, match="unknown system"):
            explain("System9")

    def test_optimizer_plane_consistency(self):
        plane = explain().artifact["planes"]["optimizer"]
        summary = plane["summary"]
        events = plane["events"]
        assert summary["candidates"] == len(events)
        assert summary["accepted"] + summary["rejected"] == len(events)
        assert [event["seq"] for event in events] == list(range(len(events)))
        yields = summary["yield"]
        assert sum(row["candidates"] for row in yields.values()) == len(events)

    def test_hard_faults_ranked_by_effort(self):
        artifact = explain(top_k=5).artifact
        hard = artifact["planes"]["atpg"]["hard_faults"]
        assert len(hard) <= 5
        efforts = [row["effort"] for row in hard]
        assert efforts == sorted(efforts, reverse=True)

    def test_deep_mode_adds_cone_sites(self):
        report = explain(mode="deep")
        sim = report.artifact["planes"]["sim"]
        assert "cones" in sim
        assert sim["cone_walks"] == sum(sim["cones"].values())

    def test_ledger_record_embeds_artifact(self, tmp_path):
        from repro.obs.ledger import RunLedger

        report = explain()
        record = report.ledger_record()
        assert record["kind"] == "explain"
        assert record["attrib"] == report.artifact
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.append(record)
        assert ledger.latest(record["bench"])["attrib"] == report.artifact

    def test_ledger_rejects_corrupt_artifact(self):
        from repro.obs.ledger import make_record

        bad = dict(explain().artifact)
        bad["schema"] = "not-attrib"
        with pytest.raises(LedgerSchemaError, match="attrib:"):
            make_record("explain-System1", [0.1], counters={}, kind="explain",
                        attrib=bad)


# ----------------------------------------------------------------------
# the validator and its CLI entry point
# ----------------------------------------------------------------------
class TestValidator:
    def artifact(self):
        collector = AttribCollector()
        collector.configure("on")
        return build_artifact(collector, {}, system="System1", seed=0,
                              quick=True, top_k=10)

    def test_empty_run_validates(self):
        assert validate_artifact(self.artifact()) == []

    def test_rejects_non_object(self):
        assert validate_artifact([]) != []
        assert validate_artifact(None) != []

    def test_rejects_wrong_schema_marker(self):
        artifact = self.artifact()
        artifact["schema"] = "repro-ledger"
        assert any("schema" in p for p in validate_artifact(artifact))

    def test_rejects_newer_version(self):
        artifact = self.artifact()
        artifact["schema_version"] = 99
        assert any("newer" in p for p in validate_artifact(artifact))

    def test_rejects_negative_totals(self):
        artifact = self.artifact()
        artifact["planes"]["atpg"]["totals"]["decisions"] = -1
        assert validate_artifact(artifact) != []

    def test_rejects_bad_bucket_key(self):
        artifact = self.artifact()
        artifact["planes"]["sim"]["buckets"]["weird"] = {
            "good_words": 1, "sweep_words": 0,
        }
        assert any("bucket" in p for p in validate_artifact(artifact))

    def test_rejects_gapped_event_sequence(self):
        artifact = self.artifact()
        artifact["planes"]["optimizer"]["events"] = [{
            "cache": "none", "kind": "upgrade", "outcome": "accept",
            "seq": 3, "subject": "CPU", "tat_after": 1, "tat_before": 2,
            "version_from": 1, "version_to": 2,
        }]
        assert any("seq" in p for p in validate_artifact(artifact))

    def test_rejects_inconsistent_reconciliation(self):
        artifact = self.artifact()
        name = sorted(artifact["reconciliation"])[0]
        artifact["reconciliation"][name]["ok"] = False
        assert any("reconciliation" in p for p in validate_artifact(artifact))

    def test_require_valid_raises(self):
        with pytest.raises(AttribSchemaError):
            require_valid_artifact({"schema": "repro-attrib"})

    def test_main_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text(artifact_json(self.artifact()))
        bad = tmp_path / "bad.json"
        bad.write_text("{}\n")
        assert attrib_main([str(good)]) == 0
        assert attrib_main([str(bad)]) == 1
        assert attrib_main([str(tmp_path / "missing.json")]) == 1
        assert attrib_main([]) == 2
        out = capsys.readouterr()
        assert "ok" in out.out and "FAIL" in out.out

    def test_artifact_json_is_canonical(self):
        artifact = self.artifact()
        text = artifact_json(artifact)
        assert text.endswith("\n")
        assert json.loads(text) == artifact
        assert artifact_json(json.loads(text)) == text


# ----------------------------------------------------------------------
# CLI behavior (satellite: usage-grade baseline errors)
# ----------------------------------------------------------------------
class TestCli:
    def run_cli(self, argv):
        from repro.cli import main

        try:
            return main(argv)
        except SystemExit as error:
            return error.code

    def test_report_missing_baseline_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        code = self.run_cli(
            ["report", "System1", "--quick", "--baseline", str(missing)]
        )
        assert code == 2
        assert str(missing) in capsys.readouterr().err

    def test_report_non_ledger_baseline_exits_2(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text("this is not a ledger\n")
        code = self.run_cli(
            ["report", "System1", "--quick", "--baseline", str(bogus)]
        )
        assert code == 2
        assert str(bogus) in capsys.readouterr().err

    def test_explain_missing_baseline_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        code = self.run_cli(
            ["explain", "System1", "--quick", "--baseline", str(missing)]
        )
        assert code == 2
        assert str(missing) in capsys.readouterr().err

    def test_explain_non_ledger_baseline_exits_2(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text("also not a ledger\n")
        code = self.run_cli(
            ["explain", "System1", "--quick", "--baseline", str(bogus)]
        )
        assert code == 2
        assert str(bogus) in capsys.readouterr().err

    def test_explain_json_writes_valid_artifact(self, tmp_path):
        out = tmp_path / "attrib.json"
        code = self.run_cli(
            ["explain", "System1", "--quick", "--json", "-o", str(out)]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert validate_artifact(payload) == []
        assert artifact_json(payload) == out.read_text()

    def test_explain_markdown_report(self, tmp_path, capsys):
        code = self.run_cli(["explain", "System1", "--quick", "--top", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Search-effort attribution" in out
        assert "Hardest faults" in out
        assert "Optimizer convergence" in out

    def test_explain_html_report(self, tmp_path):
        out = tmp_path / "report.html"
        code = self.run_cli(
            ["explain", "System1", "--quick", "--html", "-o", str(out)]
        )
        assert code == 0
        text = out.read_text()
        assert "Search-effort attribution" in text
        assert text.lstrip().startswith("<")

    def test_explain_ledger_roundtrip(self, tmp_path):
        from repro.obs.ledger import RunLedger

        ledger = tmp_path / "ledger.jsonl"
        code = self.run_cli(
            ["explain", "System1", "--quick", "--json", "--ledger", str(ledger),
             "-o", str(tmp_path / "a.json")]
        )
        assert code == 0
        record = RunLedger(ledger).latest("explain-System1-quick")
        assert record["kind"] == "explain"
        assert validate_artifact(record["attrib"]) == []


# ----------------------------------------------------------------------
# executor integration: attribution deltas ship like metrics deltas
# ----------------------------------------------------------------------
class TestExecutorDeltas:
    def test_regress_gate_ignores_attrib_counters(self):
        from repro.obs.regress import GatePolicy

        ignored = GatePolicy().counter_ignore
        assert "attrib." in ignored
        assert "explain." in ignored

    def test_serve_explain_job(self):
        from repro.serve.jobs import Job
        from repro.serve.state import WarmState, run_batch

        state = WarmState(jobs=1)
        job = Job(id="j0001", seq=0, type="explain", system="System1",
                  params={"quick": True, "seed": 0, "top_k": 4})
        ((_job, (outcome, result, error)),) = run_batch(state, [job])
        assert error is None
        assert outcome == "done"
        assert validate_artifact(result["artifact"]) == []
        assert len(result["artifact"]["planes"]["atpg"]["hard_faults"]) <= 4
        state.close()
