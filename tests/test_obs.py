"""Tests for the observability layer (tracing, metrics, profiling, CLI)."""

import json

import pytest

from repro.errors import BenchSchemaError
from repro.obs import METRICS, Tracer, profile_section, stage_rows
from repro.obs.benchjson import (
    bench_payload,
    validate_bench,
    validate_chrome_trace,
    validate_file,
    write_bench,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NOOP_SPAN


class TestMetrics:
    def test_counter_create_or_get_and_reset_in_place(self):
        registry = MetricsRegistry()
        counter = registry.counter("atpg.backtracks")
        counter.inc()
        counter.inc(4)
        assert registry.counter("atpg.backtracks") is counter
        assert counter.value == 5
        registry.reset()
        assert counter.value == 0  # cached references survive reset()
        counter.inc()
        assert registry.counters()["atpg.backtracks"] == 1

    def test_kind_clash_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_histogram_percentiles_nearest_rank(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t")
        for value in range(1, 101):  # 1..100
            hist.observe(value)
        assert hist.percentile(50) == 50
        assert hist.percentile(90) == 90
        assert hist.percentile(99) == 99
        assert hist.percentile(0) == 1
        assert hist.percentile(100) == 100
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["min"] == 1 and summary["max"] == 100
        assert summary["mean"] == pytest.approx(50.5)

    def test_histogram_percentile_small_sample(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t")
        hist.observe(7.0)
        assert hist.percentile(50) == 7.0
        assert hist.percentile(99) == 7.0

    def test_empty_histogram(self):
        from repro.obs.metrics import EMPTY_SUMMARY

        registry = MetricsRegistry()
        hist = registry.histogram("t")
        # an empty histogram has well-defined (null) order statistics,
        # not an exception -- scrapers and reports render it as "-"
        assert hist.percentile(50) is None
        assert hist.percentile(99) is None
        summary = hist.summary()
        assert summary == EMPTY_SUMMARY
        assert summary["count"] == 0 and summary["sum"] == 0.0
        assert summary["p50"] is None and summary["p99"] is None
        assert registry.histograms() == {}  # empty histograms are skipped

    def test_prefix_filters(self):
        registry = MetricsRegistry()
        registry.counter("atpg.a").inc()
        registry.counter("schedule.b").inc(2)
        assert set(registry.counters("atpg.")) == {"atpg.a"}
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"atpg.a": 1, "schedule.b": 2}


class TestTracer:
    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer()
        assert tracer.span("a") is NOOP_SPAN
        assert tracer.span("b", key=1) is NOOP_SPAN
        with tracer.span("a"):
            pass
        assert tracer.events() == []

    def test_span_nesting_depth_and_parent(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("outer.inner", core="CPU") as inner:
                inner.set(extra=3)
        events = {e["name"]: e for e in tracer.events()}
        assert events["outer.inner"]["args"]["depth"] == 1
        assert events["outer.inner"]["args"]["parent"] == "outer"
        assert events["outer.inner"]["args"]["core"] == "CPU"
        assert events["outer.inner"]["args"]["extra"] == 3
        assert events["outer"]["args"]["depth"] == 0
        assert events["outer"]["args"]["parent"] is None
        # the inner span completes first and lies inside the outer one
        assert events["outer"]["ts"] <= events["outer.inner"]["ts"]
        assert events["outer"]["dur"] >= events["outer.inner"]["dur"]

    def test_chrome_export_round_trip(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("atpg.run", faults=10):
            pass
        path = tmp_path / "trace.json"
        tracer.export_chrome(str(path))
        payload = json.loads(path.read_text())
        validate_chrome_trace(payload)
        (event,) = payload["traceEvents"]
        assert event["name"] == "atpg.run"
        assert event["ph"] == "X"
        assert event["cat"] == "atpg"

    def test_jsonl_export_round_trip(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        path = tmp_path / "trace.jsonl"
        tracer.export_jsonl(str(path))
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["name"] for e in lines] == ["b", "a"]

    def test_clear_resets_events(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            pass
        tracer.clear()
        assert tracer.events() == []


class TestProfileSection:
    def test_feeds_time_histogram_without_tracing(self):
        METRICS.reset()
        with profile_section("schedule.unittest"):
            pass
        hist = METRICS.histogram("schedule.unittest.time")
        assert hist.count == 1
        assert hist.sum >= 0.0

    def test_stage_rows_roll_up_by_prefix(self):
        registry = MetricsRegistry()
        registry.histogram("atpg.run.time").observe(0.5)
        registry.histogram("atpg.podem.time").observe(0.25)
        registry.counter("atpg.podem.backtracks").inc(7)
        registry.counter("schedule.items").inc(3)
        rows = stage_rows(registry, [("ATPG", "atpg"), ("schedule", "schedule")])
        atpg = rows[0]
        assert atpg["seconds"] == pytest.approx(0.75)
        assert atpg["calls"] == 2
        assert atpg["counters"] == {"podem.backtracks": 7}
        assert rows[1]["counters"] == {"items": 3}
        assert rows[1]["seconds"] == 0.0


class TestBenchJson:
    def test_payload_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("schedule.items").inc(8)
        payload = bench_payload(
            "schedule", 0.004, {"System1": {"makespan": 10}}, rounds=3,
            registry=registry,
        )
        path = tmp_path / "BENCH_schedule.json"
        write_bench(str(path), payload)
        assert validate_file(str(path)) == "bench"
        loaded = json.loads(path.read_text())
        assert loaded["counters"] == {"schedule.items": 8}
        assert loaded["rounds"] == 3

    def test_v2_payload_carries_raw_samples(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("schedule.items").inc(8)
        payload = bench_payload(
            "schedule", 0.004, {}, registry=registry,
            samples=[0.0041, 0.0039, 0.0040],
        )
        assert payload["schema_version"] == 2
        assert payload["samples"] == [0.0041, 0.0039, 0.0040]
        assert payload["rounds"] == 3  # rounds follows the sample count
        path = tmp_path / "BENCH_schedule.json"
        write_bench(str(path), payload)
        assert validate_file(str(path)) == "bench"

    def test_zero_valued_counters_are_recorded(self):
        registry = MetricsRegistry()
        registry.counter("a.touched_zero")  # created, never incremented
        registry.counter("a.nonzero").inc(2)
        payload = bench_payload("x", 0.1, {}, registry=registry)
        # "zero" and "absent" must be different facts for counter diffs
        assert payload["counters"] == {"a.touched_zero": 0, "a.nonzero": 2}

    def test_v1_payloads_still_validate(self):
        v1 = {
            "schema": "repro-bench", "schema_version": 1, "bench": "old",
            "wall_time_s": 0.1, "rounds": 5, "counters": {}, "results": {},
        }
        validate_bench(v1)  # no samples required at v1
        with pytest.raises(BenchSchemaError, match="declare v2"):
            validate_bench(dict(v1, samples=[0.1]))

    def test_v2_sample_constraints(self):
        good = bench_payload(
            "x", 0.1, {}, registry=MetricsRegistry(), samples=[0.1, 0.2]
        )
        with pytest.raises(BenchSchemaError, match="non-empty"):
            validate_bench(dict(good, samples=[]))
        with pytest.raises(BenchSchemaError, match="negative"):
            validate_bench(dict(good, samples=[0.1, -0.2]))
        with pytest.raises(BenchSchemaError, match="rounds is 9"):
            validate_bench(dict(good, rounds=9))
        with pytest.raises(BenchSchemaError, match="newer"):
            validate_bench(dict(good, schema_version=4))

    def test_v3_histograms(self):
        registry = MetricsRegistry()
        registry.histogram("serve.queue_wait").observe(0.01)
        payload = bench_payload(
            "x", 0.1, {}, registry=registry, samples=[0.1, 0.2],
            histograms=registry.histograms(),
        )
        assert payload["schema_version"] == 3
        assert payload["histograms"]["serve.queue_wait"]["count"] == 1
        # the well-defined empty summary validates too
        from repro.obs.metrics import EMPTY_SUMMARY

        validate_bench(dict(payload, histograms={"h": dict(EMPTY_SUMMARY)}))
        with pytest.raises(BenchSchemaError, match="declare v3"):
            validate_bench(dict(payload, schema_version=2))
        with pytest.raises(BenchSchemaError):
            validate_bench(
                dict(payload, histograms={"h": {"count": "many", "sum": 0}})
            )

    def test_validate_rejects_bad_payloads(self):
        with pytest.raises(BenchSchemaError):
            validate_bench({"schema": "repro-bench"})  # missing fields
        good = bench_payload("x", 0.1, {}, registry=MetricsRegistry())
        bad = dict(good, wall_time_s="fast")
        with pytest.raises(BenchSchemaError):
            validate_bench(bad)
        with pytest.raises(BenchSchemaError):
            validate_bench(dict(good, schema="other"))

    def test_validate_rejects_bad_trace(self):
        with pytest.raises(BenchSchemaError):
            validate_chrome_trace({"noEvents": []})
        with pytest.raises(BenchSchemaError):
            validate_chrome_trace([{"name": "a"}])  # missing ph/ts/pid/tid
        validate_chrome_trace([])  # an empty event array is loadable


class TestCliObservability:
    def test_version_flag(self, capsys):
        from repro import __version__
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_profile_smoke_with_trace(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace.json"
        assert main(["profile", "System1", "--quick", "--trace", str(out)]) == 0
        stdout = capsys.readouterr().out
        for stage in ("core-level", "transparency", "chip-level", "ATPG",
                      "fault-sim", "optimizer", "schedule"):
            assert stage in stdout
        assert "backtracks" in stdout
        payload = json.loads(out.read_text())
        validate_chrome_trace(payload)
        assert payload["traceEvents"]  # the run recorded real spans
        from repro.obs import TRACER

        assert not TRACER.enabled  # main() disables tracing afterwards

    def test_metrics_flag_appends_table(self, capsys):
        from repro.cli import main

        assert main(["--metrics", "plan", "System1"]) == 0
        stdout = capsys.readouterr().out
        assert "Metrics" in stdout
        assert "chiplevel.plans" in stdout

    def test_usage_errors_become_systemexit(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["profile", "SystemX"])
        assert exc.value.code == 2  # usage errors exit 2, message on stderr
        assert "repro:" in capsys.readouterr().err


class TestDeterminism:
    def test_atpg_is_seed_deterministic(self):
        import random

        from repro.atpg.combinational import CombinationalAtpg
        from repro.designs import build_gcd
        from repro.elaborate import elaborate
        from repro.faults.collapse import collapse_faults
        from repro.faults.model import full_fault_universe

        netlist = elaborate(build_gcd()).netlist
        universe = collapse_faults(netlist, full_fault_universe(netlist))
        faults = random.Random(7).sample(universe, 50)

        def run_once():
            METRICS.reset()
            outcome = CombinationalAtpg(netlist, seed=7).run(faults)
            return outcome.patterns, dict(METRICS.counters("atpg."))

        patterns1, counters1 = run_once()
        patterns2, counters2 = run_once()
        assert patterns1 == patterns2
        assert counters1 == counters2
        assert counters1["atpg.podem.calls"] > 0
