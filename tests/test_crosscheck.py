"""Cross-validation: RTL interpreter vs gate-level elaboration.

Two fully independent execution paths -- the word-level RTL interpreter
and bit-blasted elaborate+simulate -- must agree cycle-for-cycle, on
random circuits and on every example core.  Hypothesis drives circuit
construction seeds and input stimuli.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designs import core_builders
from repro.elaborate import elaborate
from repro.gates import SequentialSimulator
from repro.rtl import CircuitBuilder, OpKind, Slice
from repro.rtl.interp import RTLInterpreter
from repro.rtl.types import Concat, concat
from repro.util import int_to_bits

_BINARY_OPS = [OpKind.ADD, OpKind.SUB, OpKind.AND, OpKind.OR, OpKind.XOR]
_UNARY_OPS = [OpKind.INC, OpKind.DEC, OpKind.NOT, OpKind.SHL, OpKind.SHR]


def random_circuit(seed: int):
    """A random but always-valid RTL circuit."""
    rng = random.Random(seed)
    b = CircuitBuilder(f"rand{seed}")
    width = rng.choice([2, 4, 8])
    sources = []
    for i in range(rng.randint(1, 3)):
        sources.append(b.input(f"I{i}", width))
    select_bits = b.input("SEL", 2)

    expressions = list(sources)
    for i in range(rng.randint(1, 4)):
        kind = rng.choice(_BINARY_OPS + _UNARY_OPS)
        if kind in _BINARY_OPS:
            operands = [rng.choice(expressions), rng.choice(expressions)]
        else:
            operands = [rng.choice(expressions)]
        expressions.append(b.op(f"OP{i}", kind, operands))
    for i in range(rng.randint(0, 2)):
        inputs = [rng.choice(expressions) for _ in range(rng.randint(2, 3))]
        expressions.append(b.mux(f"M{i}", inputs, select=select_bits))

    registers = []
    for i in range(rng.randint(1, 3)):
        driver = rng.choice(expressions)
        enable = select_bits.sub(0, 1) if rng.random() < 0.3 else None
        reg = b.register(f"R{i}", width, enable=enable)
        b.drive(reg, driver)
        registers.append(reg)
        expressions.append(reg)
    # one split register exercising concat drivers
    if width >= 4:
        half = width // 2
        lo = rng.choice(expressions)
        hi = rng.choice(expressions)
        split = b.register("RSPLIT", width)
        b.drive(split, Concat((Slice(lo.comp, lo.lo, half), Slice(hi.comp, hi.lo + half, half))))
        expressions.append(split)

    b.output("O0", rng.choice(registers))
    b.output("O1", rng.choice(expressions))
    return b.build()


def run_both(circuit, stimuli):
    """(interpreter outputs, gate-level outputs) per cycle."""
    interp = RTLInterpreter(circuit)
    elab = elaborate(circuit)
    gate_sim = SequentialSimulator(elab.netlist)

    interp_trace, gate_trace = [], []
    for cycle_inputs in stimuli:
        interp_trace.append(interp.step(cycle_inputs))
        words = {}
        for port in circuit.inputs:
            for i, bit in enumerate(int_to_bits(cycle_inputs[port.name], port.width)):
                words[f"{port.name}.{i}"] = bit
        raw = gate_sim.step(words)
        decoded = {}
        for port in circuit.outputs:
            decoded[port.name] = sum(
                (raw[f"{port.name}.{i}"] & 1) << i for i in range(port.width)
            )
        gate_trace.append(decoded)
    return interp_trace, gate_trace


class TestRandomCircuits:
    @given(seed=st.integers(0, 400), stim_seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_interpreter_matches_gates(self, seed, stim_seed):
        circuit = random_circuit(seed)
        rng = random.Random(stim_seed)
        stimuli = [
            {
                port.name: rng.getrandbits(port.width)
                for port in circuit.inputs
            }
            for _ in range(6)
        ]
        interp_trace, gate_trace = run_both(circuit, stimuli)
        assert interp_trace == gate_trace


class TestExampleCores:
    @pytest.mark.parametrize("name", sorted(core_builders()))
    def test_interpreter_matches_gates_on_core(self, name):
        circuit = core_builders()[name]()
        rng = random.Random(hash(name) & 0xFFFF)
        stimuli = [
            {port.name: rng.getrandbits(port.width) for port in circuit.inputs}
            for _ in range(12)
        ]
        interp_trace, gate_trace = run_both(circuit, stimuli)
        assert interp_trace == gate_trace
