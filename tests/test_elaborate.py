"""Tests for RTL-to-gate elaboration: operators, muxes, registers, resets."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.elaborate import area_report, elaborate
from repro.gates import CombinationalSimulator, SequentialSimulator
from repro.rtl import CircuitBuilder, OpKind
from repro.rtl.types import Concat
from repro.util import int_to_bits


def _drive_inputs(elab, assignments):
    """Expand per-port integer values into per-bit source words."""
    words = {}
    for port, value in assignments.items():
        width = elab.circuit.get(port).width
        for i, bit in enumerate(int_to_bits(value, width)):
            words[f"{port}.{i}"] = bit
    return words


def _read_port(values, elab, port):
    width = elab.circuit.get(port).width
    return sum((values[f"{port}.{i}"] & 1) << i for i in range(width))


def combinational_op_circuit(kind, width=4, arity=2):
    b = CircuitBuilder(f"op_{kind.value}")
    a = b.input("A", width)
    operands = [a]
    if arity == 2:
        operands.append(b.input("B", width))
    result = b.op("OP", kind, operands)
    b.output("Y", result)
    return b.build()


def run_op(kind, a, b_value=None, width=4, arity=2):
    circuit = combinational_op_circuit(kind, width, arity)
    elab = elaborate(circuit)
    sim = SequentialSimulator(elab.netlist)
    inputs = {"A": a}
    if arity == 2:
        inputs["B"] = b_value
    outs = sim.step(_drive_inputs(elab, inputs))
    out_width = elab.circuit.get("Y").width
    return sum((outs[f"Y.{i}"] & 1) << i for i in range(out_width))


class TestOperators:
    @given(a=st.integers(0, 15), b=st.integers(0, 15))
    @settings(max_examples=30, deadline=None)
    def test_add(self, a, b):
        assert run_op(OpKind.ADD, a, b) == (a + b) & 0xF

    @given(a=st.integers(0, 15), b=st.integers(0, 15))
    @settings(max_examples=30, deadline=None)
    def test_sub(self, a, b):
        assert run_op(OpKind.SUB, a, b) == (a - b) & 0xF

    @given(a=st.integers(0, 15), b=st.integers(0, 15))
    @settings(max_examples=30, deadline=None)
    def test_compare(self, a, b):
        assert run_op(OpKind.EQ, a, b) == int(a == b)
        assert run_op(OpKind.LT, a, b) == int(a < b)

    @given(a=st.integers(0, 15))
    @settings(max_examples=20, deadline=None)
    def test_unary(self, a):
        assert run_op(OpKind.INC, a, arity=1) == (a + 1) & 0xF
        assert run_op(OpKind.DEC, a, arity=1) == (a - 1) & 0xF
        assert run_op(OpKind.NOT, a, arity=1) == (~a) & 0xF
        assert run_op(OpKind.SHL, a, arity=1) == (a << 1) & 0xF
        assert run_op(OpKind.SHR, a, arity=1) == a >> 1

    @given(a=st.integers(0, 15), b=st.integers(0, 15))
    @settings(max_examples=20, deadline=None)
    def test_bitwise(self, a, b):
        assert run_op(OpKind.AND, a, b) == a & b
        assert run_op(OpKind.OR, a, b) == a | b
        assert run_op(OpKind.XOR, a, b) == a ^ b

    @given(a=st.integers(0, 7))
    @settings(max_examples=10, deadline=None)
    def test_decode(self, a):
        circuit = combinational_op_circuit(OpKind.DECODE, width=3, arity=1)
        elab = elaborate(circuit)
        sim = SequentialSimulator(elab.netlist)
        outs = sim.step(_drive_inputs(elab, {"A": a}))
        value = sum((outs[f"Y.{i}"] & 1) << i for i in range(8))
        assert value == 1 << a

    @given(a=st.integers(0, 15))
    @settings(max_examples=10, deadline=None)
    def test_reductions(self, a):
        assert run_op(OpKind.REDUCE_OR, a, arity=1) == int(a != 0)
        assert run_op(OpKind.REDUCE_AND, a, arity=1) == int(a == 15)


class TestMuxElaboration:
    @given(sel=st.integers(0, 3), data=st.lists(st.integers(0, 255), min_size=3, max_size=3))
    @settings(max_examples=20, deadline=None)
    def test_three_input_mux_clamps(self, sel, data):
        b = CircuitBuilder("m3")
        ports = [b.input(f"D{i}", 8) for i in range(3)]
        s = b.input("S", 2)
        m = b.mux("M", ports, select=s)
        b.output("Y", m)
        elab = elaborate(b.build())
        sim = SequentialSimulator(elab.netlist)
        inputs = {f"D{i}": data[i] for i in range(3)}
        inputs["S"] = sel
        outs = sim.step(_drive_inputs(elab, inputs))
        value = sum((outs[f"Y.{i}"] & 1) << i for i in range(8))
        expected = data[min(sel, 2)]
        assert value == expected


class TestRegisters:
    def test_plain_register_delays_one_cycle(self):
        b = CircuitBuilder("r")
        din = b.input("D", 4)
        r = b.register("R", 4)
        b.drive(r, din)
        b.output("Q", r)
        elab = elaborate(b.build())
        sim = SequentialSimulator(elab.netlist)
        out0 = sim.step(_drive_inputs(elab, {"D": 9}))
        assert sum((out0[f"Q.{i}"] & 1) << i for i in range(4)) == 0
        out1 = sim.step(_drive_inputs(elab, {"D": 0}))
        assert sum((out1[f"Q.{i}"] & 1) << i for i in range(4)) == 9

    def test_enable_holds_value(self):
        b = CircuitBuilder("r")
        din = b.input("D", 4)
        en = b.input("EN", 1)
        r = b.register("R", 4, enable=en)
        b.drive(r, din)
        b.output("Q", r)
        elab = elaborate(b.build())
        sim = SequentialSimulator(elab.netlist)
        sim.step(_drive_inputs(elab, {"D": 5, "EN": 1}))
        sim.step(_drive_inputs(elab, {"D": 12, "EN": 0}))
        out = sim.step(_drive_inputs(elab, {"D": 0, "EN": 0}))
        assert sum((out[f"Q.{i}"] & 1) << i for i in range(4)) == 5

    def test_synchronous_reset(self):
        b = CircuitBuilder("r")
        din = b.input("D", 4)
        rst = b.input("RST", 1)
        r = b.register("R", 4, reset_value=3)
        b.drive(r, din)
        b.output("Q", r)
        b.set_reset("RST")
        elab = elaborate(b.build())
        sim = SequentialSimulator(elab.netlist)
        sim.step(_drive_inputs(elab, {"D": 9, "RST": 1}))
        out = sim.step(_drive_inputs(elab, {"D": 9, "RST": 0}))
        assert sum((out[f"Q.{i}"] & 1) << i for i in range(4)) == 3

    def test_split_register_concat_driver(self):
        b = CircuitBuilder("r")
        a = b.input("A", 4)
        c = b.input("C", 4)
        r = b.register("R", 8)
        b.drive(r, Concat((a, c)))
        b.output("Q", r)
        elab = elaborate(b.build())
        sim = SequentialSimulator(elab.netlist)
        sim.step(_drive_inputs(elab, {"A": 0x5, "C": 0xA}))
        out = sim.step(_drive_inputs(elab, {"A": 0, "C": 0}))
        assert sum((out[f"Q.{i}"] & 1) << i for i in range(8)) == 0xA5


class TestAreaReport:
    def test_plain_circuit_has_no_overhead(self):
        b = CircuitBuilder("a")
        din = b.input("D", 4)
        r = b.register("R", 4)
        b.drive(r, din)
        b.output("Q", r)
        report = area_report(elaborate(b.build()).netlist)
        assert report.overhead == 0
        assert report.total == report.functional
        assert report.total == 4 * 5  # four DFFs

    def test_flop_count_matches_rtl(self):
        b = CircuitBuilder("a")
        din = b.input("D", 4)
        r1 = b.register("R1", 4)
        r2 = b.register("R2", 4)
        b.drive(r1, din)
        b.drive(r2, r1)
        b.output("Q", r2)
        elab = elaborate(b.build())
        assert elab.netlist.flop_count() == 8
