"""Tests for the append-only run ledger (:mod:`repro.obs.ledger`)."""

import json
import threading

import pytest

from repro.errors import LedgerSchemaError
from repro.obs import METRICS
from repro.obs.ledger import (
    LEDGER_SCHEMA,
    LEDGER_SCHEMA_VERSION,
    RunLedger,
    environment_fingerprint,
    make_record,
    pooled_samples,
    utc_timestamp,
    validate_ledger_file,
    validate_record,
)

#: a fixed fingerprint so record-construction tests are hermetic
ENV = {"python": "3.12.0", "platform": "linux", "cpus": 8, "repro_jobs": None}


def record(bench="schedule", samples=(0.004, 0.005), counters=None, **kwargs):
    kwargs.setdefault("env", ENV)
    kwargs.setdefault("git_sha", None)
    kwargs.setdefault("timestamp", "2026-08-06T12:00:00Z")
    return make_record(
        bench,
        list(samples),
        counters=counters if counters is not None else {"schedule.items": 8},
        **kwargs,
    )


class TestRecordConstruction:
    def test_make_record_shape(self):
        rec = record(results={"makespan": 42})
        assert rec["schema"] == LEDGER_SCHEMA
        assert rec["schema_version"] == LEDGER_SCHEMA_VERSION
        assert rec["bench"] == "schedule"
        assert rec["kind"] == "bench"
        assert rec["samples"] == [0.004, 0.005]
        assert rec["counters"] == {"schedule.items": 8}
        assert rec["results"] == {"makespan": 42}
        validate_record(rec)  # idempotent

    def test_counters_default_to_full_registry_snapshot(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("a.nonzero").inc(3)
        registry.counter("a.zero")  # touched but never incremented
        rec = make_record(
            "bench", [0.5], registry=registry,
            env=ENV, git_sha=None, timestamp="2026-08-06T12:00:00Z",
        )
        # zeros included: "zero" and "absent" are different facts
        assert rec["counters"] == {"a.nonzero": 3, "a.zero": 0}

    def test_environment_fingerprint_fields(self):
        env = environment_fingerprint()
        assert set(env) == {"python", "platform", "cpus", "repro_jobs"}
        assert env["cpus"] >= 1

    def test_utc_timestamp_format(self):
        assert utc_timestamp(0.0) == "1970-01-01T00:00:00Z"

    def test_auto_git_sha_resolves_in_this_checkout(self):
        rec = make_record(
            "x", [1.0], counters={}, env=ENV, timestamp="2026-08-06T12:00:00Z"
        )
        assert rec["git_sha"] is None or len(rec["git_sha"]) == 40


class TestValidation:
    def test_rejects_non_dict(self):
        with pytest.raises(LedgerSchemaError, match="must be an object"):
            validate_record([1, 2])

    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (lambda r: r.pop("samples"), "missing field 'samples'"),
            (lambda r: r.update(samples=[]), "samples list is empty"),
            (lambda r: r.update(samples=[-0.1]), "sample 0 is negative"),
            (lambda r: r.update(samples=[True]), "sample 0 is not a number"),
            (lambda r: r.update(kind="trace"), "kind 'trace'"),
            (lambda r: r.update(bench=""), "bench name is empty"),
            (lambda r: r.update(schema="other"), "schema is 'other'"),
            (lambda r: r.update(schema_version=99), "newer than"),
            (lambda r: r.pop("git_sha"), "git_sha"),
            (lambda r: r.update(git_sha=7), "string or null"),
            (lambda r: r.update(counters={"a": "x"}), "counter 'a'"),
            (lambda r: r["env"].pop("cpus"), "env misses 'cpus'"),
        ],
    )
    def test_rejects_each_violation(self, mutate, fragment):
        rec = record()
        rec["env"] = dict(rec["env"])
        mutate(rec)
        with pytest.raises(LedgerSchemaError, match=fragment):
            validate_record(rec)

    def test_collects_all_problems_in_one_error(self):
        rec = record()
        rec["samples"] = []
        rec["kind"] = "bogus"
        with pytest.raises(LedgerSchemaError) as exc:
            validate_record(rec)
        message = str(exc.value)
        assert "samples list is empty" in message and "bogus" in message


class TestRunLedger:
    def test_append_and_read_back(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        assert not ledger.exists()
        assert ledger.records() == []
        ledger.append(record(samples=[0.001]))
        ledger.append(record(bench="parallel", samples=[0.002]))
        ledger.append(record(samples=[0.003]))
        assert ledger.exists()
        assert ledger.benches() == ["parallel", "schedule"]
        schedule = ledger.records("schedule")
        assert [r["samples"] for r in schedule] == [[0.001], [0.003]]
        assert ledger.latest("schedule")["samples"] == [0.003]
        assert ledger.latest("missing") is None

    def test_append_creates_parent_directory(self, tmp_path):
        ledger = RunLedger(tmp_path / "deep" / "nested" / "ledger.jsonl")
        ledger.append(record())
        assert len(ledger.records()) == 1

    def test_append_rejects_invalid_and_leaves_file_untouched(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.append(record())
        bad = record()
        bad["samples"] = []
        with pytest.raises(LedgerSchemaError):
            ledger.append(bad)
        assert len(ledger.records()) == 1

    def test_each_record_is_one_json_line(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.append(record())
        ledger.append(record(bench="other"))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            assert json.loads(line)["schema"] == LEDGER_SCHEMA

    def test_concurrent_appends_never_interleave(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        per_thread = 20

        def run(name):
            for _ in range(per_thread):
                ledger.append(record(bench=name))

        threads = [
            threading.Thread(target=run, args=(f"t{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        loaded = ledger.records()  # strict parse: torn lines would raise
        assert len(loaded) == 4 * per_thread
        for name in ("t0", "t1", "t2", "t3"):
            assert len(ledger.records(name)) == per_thread

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        RunLedger(path).append(record())
        with open(path, "a") as handle:
            handle.write("{not json\n")
        with pytest.raises(LedgerSchemaError, match=r":2"):
            RunLedger(path).records()
        with pytest.raises(LedgerSchemaError, match="line 2"):
            validate_ledger_file(str(path))

    def test_window_slices_series_history(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        for index in range(6):
            ledger.append(record(samples=[float(index + 1)]))
        window = ledger.window("schedule", 3)
        assert [r["samples"][0] for r in window] == [4.0, 5.0, 6.0]
        # before=len-1 excludes the newest record (the self-history mode)
        window = ledger.window("schedule", 3, before=5)
        assert [r["samples"][0] for r in window] == [3.0, 4.0, 5.0]
        assert [r["samples"][0] for r in ledger.window("schedule", 0)] == [
            1.0, 2.0, 3.0, 4.0, 5.0, 6.0,
        ]

    def test_append_from_registry(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("x.y").inc(5)
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        rec = ledger.append_from_registry(
            "bench", [0.5], registry=registry,
            env=ENV, git_sha=None, timestamp="2026-08-06T12:00:00Z",
        )
        assert rec["counters"] == {"x.y": 5}
        assert ledger.latest("bench")["counters"] == {"x.y": 5}

    def test_append_counts_in_shared_registry(self, tmp_path):
        before = METRICS.counter("ledger.appends").value
        RunLedger(tmp_path / "ledger.jsonl").append(record())
        assert METRICS.counter("ledger.appends").value == before + 1

    def test_pooled_samples(self):
        records = [record(samples=[1.0, 2.0]), record(samples=[3.0])]
        assert pooled_samples(records) == [1.0, 2.0, 3.0]

    def test_benchjson_validator_understands_ledgers(self, tmp_path):
        from repro.obs.benchjson import validate_file

        path = tmp_path / "ledger.jsonl"
        RunLedger(path).append(record())
        assert validate_file(str(path)) == "ledger"
        single = tmp_path / "record.json"
        single.write_text(json.dumps(record()))
        assert validate_file(str(single)) == "ledger-record"


class TestFanOutDeterminism:
    """Worker-pool counter merges land in ledger records bit-identically
    at any job count (``exec.*`` is execution-strategy bookkeeping --
    chunk counts, pool sizing -- and explicitly outside the guarantee)."""

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_design_space_counters_identical_across_jobs(self, tmp_path, jobs):
        from repro.designs import build_system1
        from repro.soc.optimizer import design_space

        def run(job_count):
            soc = build_system1()
            METRICS.reset()
            design_space(soc, jobs=job_count, use_cache=False)
            return make_record(
                "fanout",
                [1.0],
                registry=METRICS,
                env=ENV,
                git_sha=None,
                timestamp="2026-08-06T12:00:00Z",
            )

        def stable(rec):
            return {
                name: value
                for name, value in rec["counters"].items()
                if not name.startswith("exec.")
            }

        serial, fanned = run(1), run(jobs)
        assert stable(serial) == stable(fanned)
        assert stable(serial)  # the run actually counted work

        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.append(serial)
        ledger.append(fanned)
        first, second = ledger.records("fanout")
        assert stable(first) == stable(second)


# ----------------------------------------------------------------------
# schema v3: the optional 'histograms' field
# ----------------------------------------------------------------------
class TestHistogramsField:
    def summary(self, values):
        from repro.obs.metrics import MetricsRegistry

        hist = MetricsRegistry().histogram("h")
        for value in values:
            hist.observe(value)
        return hist.summary()

    def test_v3_record_round_trips(self, tmp_path):
        rec = record(histograms={"serve.queue_wait": self.summary([0.01, 0.02])})
        assert rec["schema_version"] == LEDGER_SCHEMA_VERSION >= 3
        validate_record(rec)
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.append(rec)
        (read_back,) = ledger.records("schedule")
        assert read_back["histograms"]["serve.queue_wait"]["count"] == 2

    def test_histograms_field_is_optional(self):
        rec = record()
        assert "histograms" not in rec
        validate_record(rec)

    def test_empty_summary_validates(self):
        from repro.obs.metrics import EMPTY_SUMMARY

        validate_record(record(histograms={"h": dict(EMPTY_SUMMARY)}))

    @pytest.mark.parametrize("bad, fragment", [
        ("nope", "histograms"),
        ({"h": "nope"}, "h"),
        ({"h": {"sum": 0.0}}, "count"),
        ({"h": {"count": "many", "sum": 0.0}}, "count"),
        ({"h": {"count": 1, "sum": 0.1, "p99": "slow"}}, "p99"),
    ])
    def test_rejects_malformed_histograms(self, bad, fragment):
        rec = record(histograms={"h": self.summary([0.01])})
        rec["histograms"] = bad
        with pytest.raises(LedgerSchemaError, match=fragment):
            validate_record(rec)
