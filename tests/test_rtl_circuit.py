"""Tests for the RTL circuit container, builder DSL, and validation."""

import pytest

from repro.errors import NetlistError
from repro.rtl import CircuitBuilder, OpKind, Slice, validate_circuit
from repro.rtl.types import Concat


def simple_pipe():
    b = CircuitBuilder("pipe")
    din = b.input("DIN", 8)
    sel = b.input("SEL", 1)
    r1 = b.register("R1", 8)
    r2 = b.register("R2", 8)
    b.drive(r1, din)
    m = b.mux("M0", [r1, din], select=sel)
    b.drive(r2, m)
    b.output("DOUT", r2)
    return b.build()


class TestBuilder:
    def test_builds_valid_circuit(self):
        circuit = simple_pipe()
        assert circuit.flip_flop_count() == 16
        assert circuit.input_bit_count() == 9
        assert circuit.output_bit_count() == 8

    def test_duplicate_name_rejected(self):
        b = CircuitBuilder("c")
        b.input("X", 1)
        with pytest.raises(NetlistError):
            b.input("X", 2)

    def test_drive_width_mismatch(self):
        b = CircuitBuilder("c")
        din = b.input("DIN", 4)
        r = b.register("R", 8)
        with pytest.raises(NetlistError):
            b.drive(r, din)

    def test_drive_partial_slice_rejected(self):
        b = CircuitBuilder("c")
        din = b.input("DIN", 8)
        r = b.register("R", 8)
        with pytest.raises(NetlistError):
            b.drive(r.sub(0, 4), din.sub(0, 4))

    def test_split_register_via_concat(self):
        b = CircuitBuilder("c")
        a = b.input("A", 4)
        c = b.input("C", 4)
        r = b.register("R", 8)
        b.drive(r, Concat((a, c)))
        b.output("O", r)
        circuit = b.build()
        assert circuit.get("R").driver.width == 8

    def test_op_width_inference(self):
        b = CircuitBuilder("c")
        a = b.input("A", 4)
        eq = b.op("E", OpKind.EQ, [a, a])
        assert eq.width == 1
        dec = b.op("D", OpKind.DECODE, [a])
        assert dec.width == 16

    def test_enable_must_be_one_bit(self):
        b = CircuitBuilder("c")
        a = b.input("A", 4)
        en = b.input("EN", 2)
        r = b.register("R", 4)
        b.drive(r, a)
        b.circuit().get("R").enable = en
        b.output("O", r)
        with pytest.raises(NetlistError):
            b.build()


class TestValidation:
    def test_missing_driver(self):
        b = CircuitBuilder("c")
        b.input("A", 1)
        b.register("R", 1)
        b.output("O", width=1, driver=Slice("R", 0, 1))
        with pytest.raises(NetlistError, match="no driver"):
            b.build()

    def test_unknown_reference(self):
        b = CircuitBuilder("c")
        b.input("A", 1)
        r = b.register("R", 1)
        b.drive(r, Slice("GHOST", 0, 1))
        b.output("O", r)
        with pytest.raises(NetlistError, match="unknown"):
            b.build()

    def test_output_cannot_be_read(self):
        b = CircuitBuilder("c")
        a = b.input("A", 1)
        o = b.output("O", a)
        r = b.register("R", 1)
        b.drive(r, o)
        with pytest.raises(NetlistError, match="cannot be read"):
            b.build()

    def test_slice_exceeding_width(self):
        b = CircuitBuilder("c")
        b.input("A", 4)
        r = b.register("R", 8)
        b.drive(r, Slice("A", 0, 8))
        b.output("O", r)
        with pytest.raises(NetlistError):
            b.build()

    def test_combinational_cycle_detected(self):
        b = CircuitBuilder("c")
        a = b.input("A", 1)
        # two muxes feeding each other
        m1 = b.mux("M1", [a, Slice("M2", 0, 1)], select=a)
        b.mux("M2", [a, m1], select=a)
        b.output("O", m1)
        with pytest.raises(NetlistError, match="cycle"):
            b.build()

    def test_register_breaks_cycle(self):
        b = CircuitBuilder("c")
        a = b.input("A", 1)
        r = b.register("R", 1)
        m = b.mux("M1", [a, r], select=a)
        b.drive(r, m)
        b.output("O", r)
        b.build()  # must not raise

    def test_mux_select_too_narrow(self):
        b = CircuitBuilder("c")
        a = b.input("A", 2)
        sel = b.input("S", 1)
        b.mux("M", [a, a, a], select=sel)
        b.output("O", Slice("M", 0, 2))
        with pytest.raises(NetlistError, match="select"):
            b.build()

    def test_reset_net_must_be_one_bit_input(self):
        circuit = simple_pipe()
        circuit.reset_net = "DIN"
        with pytest.raises(NetlistError, match="reset"):
            validate_circuit(circuit)

    def test_no_inputs_rejected(self):
        b = CircuitBuilder("c")
        k = b.const("K", 1, 1)
        b.output("O", k)
        with pytest.raises(NetlistError, match="no inputs"):
            b.build()

    def test_copy_is_independent(self):
        circuit = simple_pipe()
        clone = circuit.copy("pipe2")
        clone.get("M0").inputs.append(Slice("DIN", 0, 8))
        assert len(circuit.get("M0").inputs) == 2
