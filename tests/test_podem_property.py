"""Property tests: PODEM's verdicts are consistent with the fault simulator.

On random gate netlists, every DETECTED verdict must be confirmed by
fault-simulating the generated pattern, and every REDUNDANT verdict must
survive an exhaustive (or heavy random) pattern barrage undetected.
"""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg import PodemStatus, podem
from repro.faults import FaultSimulator, collapse_faults, full_fault_universe
from repro.gates import GateKind, GateNetlist

_KINDS2 = [GateKind.AND, GateKind.OR, GateKind.NAND, GateKind.NOR, GateKind.XOR, GateKind.XNOR]
_KINDS1 = [GateKind.NOT, GateKind.BUF]


def random_netlist(seed: int) -> GateNetlist:
    rng = random.Random(seed)
    n = GateNetlist(f"g{seed}")
    nets = []
    for i in range(rng.randint(2, 5)):
        nets.append(n.add_gate(f"i{i}", GateKind.INPUT))
    for i in range(rng.randint(3, 12)):
        if rng.random() < 0.25:
            kind = rng.choice(_KINDS1)
            fanins = [rng.choice(nets)]
        elif rng.random() < 0.15:
            kind = GateKind.MUX2
            fanins = [rng.choice(nets) for _ in range(3)]
        else:
            kind = rng.choice(_KINDS2)
            fanins = [rng.choice(nets), rng.choice(nets)]
        nets.append(n.add_gate(f"g{i}", kind, fanins))
    # observe a couple of the deepest nets
    for i, net in enumerate(nets[-2:]):
        n.add_gate(f"O{i}", GateKind.OUTPUT, [net])
    return n.validate()


def exhaustive_patterns(netlist: GateNetlist):
    inputs = sorted(g.name for g in netlist.inputs)
    for values in itertools.product([0, 1], repeat=len(inputs)):
        yield dict(zip(inputs, values))


class TestPodemAgainstFaultSim:
    @given(seed=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_verdicts_consistent(self, seed):
        netlist = random_netlist(seed)
        faults = collapse_faults(netlist, full_fault_universe(netlist))
        simulator = FaultSimulator(netlist)
        input_names = [g.name for g in netlist.inputs]
        all_patterns = list(exhaustive_patterns(netlist))

        for fault in faults:
            result = podem(netlist, fault, backtrack_limit=300)
            if result.status is PodemStatus.DETECTED:
                pattern = {name: result.assignment.get(name, 0) for name in input_names}
                graded = simulator.run([pattern], [fault])
                assert fault in graded.detected, f"{fault} pattern not confirmed ({seed})"
            elif result.status is PodemStatus.REDUNDANT:
                graded = simulator.run(all_patterns, [fault])
                assert fault in graded.undetected, f"{fault} falsely proven redundant ({seed})"

    @given(seed=st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_exhaustive_equals_podem_coverage(self, seed):
        """PODEM+sim finds exactly the faults an exhaustive set detects."""
        netlist = random_netlist(seed)
        faults = collapse_faults(netlist, full_fault_universe(netlist))
        simulator = FaultSimulator(netlist)
        exhaustive = simulator.run(list(exhaustive_patterns(netlist)), faults)
        detectable = set(exhaustive.detected)
        for fault in faults:
            result = podem(netlist, fault, backtrack_limit=1000)
            if result.status is PodemStatus.DETECTED:
                assert fault in detectable
            elif result.status is PodemStatus.REDUNDANT:
                assert fault not in detectable
