"""Tests for the parallel execution engine (``repro.exec``).

Covers job-count resolution (flag > ``REPRO_JOBS`` > serial), ordered
serial/parallel mapping, worker context delivery, cross-process metrics
merging, graceful degradation to the serial path, and the headline
guarantee: fan-out runs are bit-identical to serial ones.
"""

import os

import pytest

from repro.errors import UsageError
from repro.exec import JOBS_ENV, ParallelExecutor, resolve_jobs
from repro.obs import METRICS


# ----------------------------------------------------------------------
# module-level task functions (must be picklable for the process pool)
# ----------------------------------------------------------------------
def _square(x):
    return x * x


def _with_context(context, x):
    return context + x


def _count_and_square(x):
    METRICS.counter("test.exec.worker_calls").inc()
    METRICS.histogram("test.exec.values").observe(x)
    return x * x


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs() == 1

    def test_env_var_used_when_no_argument(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert resolve_jobs() == 3

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert resolve_jobs(2) == 2

    def test_zero_means_cpu_count(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs(0) == max(1, os.cpu_count() or 1)

    def test_bad_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        with pytest.raises(UsageError, match="REPRO_JOBS"):
            resolve_jobs()


class TestSerialMap:
    def test_results_in_order(self):
        with ParallelExecutor(jobs=1) as executor:
            assert not executor.parallel
            assert executor.map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_context_passed_first(self):
        with ParallelExecutor(jobs=1, context=100) as executor:
            assert executor.map(_with_context, [1, 2]) == [101, 102]

    def test_counters_track_submissions(self):
        submitted = METRICS.counter("exec.tasks.submitted").value
        completed = METRICS.counter("exec.tasks.completed").value
        with ParallelExecutor(jobs=1) as executor:
            executor.map(_square, [1, 2, 3])
        assert METRICS.counter("exec.tasks.submitted").value == submitted + 3
        assert METRICS.counter("exec.tasks.completed").value == completed + 3


class TestParallelMap:
    def test_matches_serial(self):
        items = list(range(20))
        with ParallelExecutor(jobs=1) as serial:
            expected = serial.map(_square, items)
        with ParallelExecutor(jobs=2) as executor:
            assert executor.map(_square, items) == expected

    def test_context_passed_first(self):
        with ParallelExecutor(jobs=2, context=1000) as executor:
            assert executor.map(_with_context, [1, 2, 3, 4]) == [
                1001,
                1002,
                1003,
                1004,
            ]

    def test_single_item_stays_inline(self):
        with ParallelExecutor(jobs=2) as executor:
            assert executor.map(_square, [7]) == [49]
            assert executor._pool is None  # no pool spun up for one task

    def test_worker_metrics_merge_into_parent(self):
        calls = METRICS.counter("test.exec.worker_calls").value
        observed = METRICS.histogram("test.exec.values").count
        with ParallelExecutor(jobs=2) as executor:
            executor.map(_count_and_square, [1, 2, 3, 4, 5])
        assert METRICS.counter("test.exec.worker_calls").value == calls + 5
        assert METRICS.histogram("test.exec.values").count == observed + 5

    def test_degrades_to_serial_on_pool_failure(self, monkeypatch):
        fallbacks = METRICS.counter("exec.pool.fallbacks").value

        executor = ParallelExecutor(jobs=2)

        def explode():
            raise OSError("no processes in this sandbox")

        monkeypatch.setattr(executor, "_ensure_pool", explode)
        assert executor.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert not executor.parallel  # broken pools stay serial
        assert METRICS.counter("exec.pool.fallbacks").value == fallbacks + 1
        # later maps skip the pool entirely and still work
        assert executor.map(_square, [4, 5]) == [16, 25]
        executor.close()


def _quick_soc():
    """Small three-core SOC with real transparency versions."""
    from repro.designs import build_system1

    return build_system1()


class TestFanOutDeterminism:
    """Parallel fan-out sites must be bit-identical to serial runs."""

    def _point_key(self, point):
        return (
            tuple(sorted(point.selection.items())),
            point.tat,
            point.chip_cells,
            tuple(str(m) for m in point.plan.test_muxes),
            {name: p.tat for name, p in point.plan.core_plans.items()},
        )

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_design_space_matches_serial(self, jobs):
        from repro.soc.optimizer import design_space

        serial = design_space(_quick_soc(), jobs=1, use_cache=False)
        parallel = design_space(_quick_soc(), jobs=jobs, use_cache=False)
        assert [self._point_key(p) for p in parallel] == [
            self._point_key(p) for p in serial
        ]

    def test_schedule_points_matches_serial(self):
        from repro.flow.chiplevel import schedule_points
        from repro.soc.optimizer import design_space

        points = design_space(_quick_soc(), jobs=1)
        serial = schedule_points(points, jobs=1)
        parallel = schedule_points(points, jobs=2)
        assert [s.makespan for s in parallel] == [s.makespan for s in serial]
        assert [len(s.sessions()) for s in parallel] == [
            len(s.sessions()) for s in serial
        ]

    def test_prepare_cores_matches_serial(self):
        from repro.designs import build_gcd, build_preprocessor
        from repro.flow import prepare_cores

        circuits = [build_gcd(), build_preprocessor()]
        serial = prepare_cores(circuits, seed=0, jobs=1)
        parallel = prepare_cores(circuits, seed=0, jobs=2)
        for a, b in zip(serial, parallel):
            assert a.name == b.name
            assert a.vector_count == b.vector_count
            assert a.atpg.report.fault_coverage == b.atpg.report.fault_coverage
            assert a.hscan.extra_area == b.hscan.extra_area
            assert [v.name for v in a.versions] == [v.name for v in b.versions]

    def test_run_socet_matches_serial(self):
        from repro.flow.chiplevel import run_socet

        serial = run_socet(_quick_soc(), jobs=1)
        parallel = run_socet(_quick_soc(), jobs=2)
        assert serial.min_area_plan.total_tat == parallel.min_area_plan.total_tat
        assert serial.min_tat_plan.total_tat == parallel.min_tat_plan.total_tat
        assert (
            serial.min_area_schedule.makespan == parallel.min_area_schedule.makespan
        )
        assert [p.tat for p in serial.points] == [p.tat for p in parallel.points]
