"""Tests for the gate-level netlist, levelization, and simulators."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import NetlistError, SimulationError
from repro.gates import CombinationalSimulator, GateKind, GateNetlist, SequentialSimulator, levelize
from repro.gates.cells import gate_area
from repro.gates.simulator import FaultSite


def xor_netlist():
    """y = a XOR b built from AND/OR/NOT."""
    n = GateNetlist("xor2")
    n.add_gate("a", GateKind.INPUT)
    n.add_gate("b", GateKind.INPUT)
    n.add_gate("na", GateKind.NOT, ["a"])
    n.add_gate("nb", GateKind.NOT, ["b"])
    n.add_gate("t1", GateKind.AND, ["a", "nb"])
    n.add_gate("t2", GateKind.AND, ["na", "b"])
    n.add_gate("y", GateKind.OR, ["t1", "t2"])
    n.add_gate("Y", GateKind.OUTPUT, ["y"])
    return n.validate()


class TestNetlist:
    def test_duplicate_gate_rejected(self):
        n = GateNetlist("n")
        n.add_gate("g", GateKind.INPUT)
        with pytest.raises(NetlistError):
            n.add_gate("g", GateKind.INPUT)

    def test_arity_checks(self):
        n = GateNetlist("n")
        n.add_gate("a", GateKind.INPUT)
        with pytest.raises(NetlistError):
            n.add_gate("bad", GateKind.AND, ["a"])
        with pytest.raises(NetlistError):
            n.add_gate("bad2", GateKind.NOT, [])
        with pytest.raises(NetlistError):
            n.add_gate("bad3", GateKind.MUX2, ["a", "a"])

    def test_unknown_fanin_caught_by_validate(self):
        n = GateNetlist("n")
        n.add_gate("g", GateKind.NOT, ["missing"])
        with pytest.raises(NetlistError, match="unknown"):
            n.validate()

    def test_cycle_caught_by_validate(self):
        n = GateNetlist("n")
        n.add_gate("a", GateKind.INPUT)
        n.add_gate("g1", GateKind.AND, ["a", "g2"])
        n.add_gate("g2", GateKind.AND, ["a", "g1"])
        with pytest.raises(NetlistError, match="cycle"):
            n.validate()

    def test_dff_breaks_cycle(self):
        n = GateNetlist("n")
        n.add_gate("a", GateKind.INPUT)
        n.add_gate("f", GateKind.DFF, ["g"])
        n.add_gate("g", GateKind.AND, ["a", "f"])
        n.add_gate("O", GateKind.OUTPUT, ["g"])
        n.validate()

    def test_area_model(self):
        assert gate_area(GateKind.AND, 2) == 1
        assert gate_area(GateKind.AND, 4) == 3
        assert gate_area(GateKind.XOR, 2) == 2
        assert gate_area(GateKind.DFF, 1) == 5
        assert xor_netlist().area() == 5  # 2 NOT + 2 AND + 1 OR

    def test_fanout_map(self):
        n = xor_netlist()
        assert sorted(n.fanout_map()["a"]) == ["na", "t1"]


class TestLevelize:
    def test_order_respects_dependencies(self):
        n = xor_netlist()
        order = levelize(n)
        position = {name: i for i, name in enumerate(order)}
        for gate in n.gates():
            for source in gate.fanins:
                assert position[source] < position[gate.name]

    def test_all_gates_present(self):
        n = xor_netlist()
        assert sorted(levelize(n)) == sorted(g.name for g in n.gates())


class TestCombinationalSimulator:
    def test_xor_truth_table(self):
        sim = CombinationalSimulator(xor_netlist())
        # patterns: (a,b) = 00, 01, 10, 11 packed into 4-bit words
        values = sim.run({"a": 0b1100, "b": 0b1010}, pattern_count=4)
        assert values["Y"] == 0b0110

    def test_missing_source_raises(self):
        sim = CombinationalSimulator(xor_netlist())
        with pytest.raises(SimulationError):
            sim.run({"a": 1}, pattern_count=1)

    def test_output_stuck_fault(self):
        sim = CombinationalSimulator(xor_netlist())
        values = sim.run({"a": 0b1100, "b": 0b1010}, 4, fault=FaultSite("y", None, 1))
        assert values["Y"] == 0b1111

    def test_input_pin_fault(self):
        sim = CombinationalSimulator(xor_netlist())
        # t1 = a AND nb with pin a stuck at 1 -> t1 = nb
        values = sim.run({"a": 0b1100, "b": 0b1010}, 4, fault=FaultSite("t1", 0, 1))
        assert values["t1"] == 0b0101

    def test_fault_on_primary_input(self):
        sim = CombinationalSimulator(xor_netlist())
        values = sim.run({"a": 0b1100, "b": 0b1010}, 4, fault=FaultSite("a", None, 0))
        assert values["Y"] == 0b1010

    @given(a=st.integers(0, 1), b=st.integers(0, 1))
    def test_single_pattern_matches_python(self, a, b):
        sim = CombinationalSimulator(xor_netlist())
        values = sim.run({"a": a, "b": b}, 1)
        assert values["Y"] == a ^ b


class TestSequentialSimulator:
    def counter_netlist(self):
        """1-bit toggle: q <= q XOR en."""
        n = GateNetlist("toggle")
        n.add_gate("en", GateKind.INPUT)
        n.add_gate("q", GateKind.DFF, ["d"])
        n.add_gate("d", GateKind.XOR, ["q", "en"])
        n.add_gate("Q", GateKind.OUTPUT, ["q"])
        return n.validate()

    def test_toggle_counts(self):
        sim = SequentialSimulator(self.counter_netlist())
        outs = [sim.step({"en": 1})["Q"] for _ in range(4)]
        assert outs == [0, 1, 0, 1]

    def test_enable_zero_holds(self):
        sim = SequentialSimulator(self.counter_netlist())
        sim.step({"en": 1})
        assert sim.states["q"] == 1
        sim.step({"en": 0})
        assert sim.states["q"] == 1

    def test_parallel_patterns(self):
        sim = SequentialSimulator(self.counter_netlist(), pattern_count=2)
        sim.step({"en": 0b01})
        assert sim.states["q"] == 0b01

    def test_initial_states(self):
        sim = SequentialSimulator(self.counter_netlist(), initial_states={"q": 1})
        assert sim.step({"en": 0})["Q"] == 1

    def test_initial_state_unknown_flop(self):
        with pytest.raises(SimulationError):
            SequentialSimulator(self.counter_netlist(), initial_states={"nope": 1})

    def test_sdff_scan_shift(self):
        n = GateNetlist("scan")
        n.add_gate("d", GateKind.INPUT)
        n.add_gate("si", GateKind.INPUT)
        n.add_gate("se", GateKind.INPUT)
        n.add_gate("f1", GateKind.SDFF, ["d", "si", "se"])
        n.add_gate("f2", GateKind.SDFF, ["d", "f1", "se"])
        n.add_gate("O", GateKind.OUTPUT, ["f2"])
        n.validate()
        sim = SequentialSimulator(n)
        # shift 1 then 0 through the chain with scan enable on
        sim.step({"d": 0, "si": 1, "se": 1})
        sim.step({"d": 0, "si": 0, "se": 1})
        assert sim.states == {"f1": 0, "f2": 1}
        # functional capture
        sim.step({"d": 1, "si": 0, "se": 0})
        assert sim.states == {"f1": 1, "f2": 1}

    def test_stuck_flop_fault(self):
        sim = SequentialSimulator(self.counter_netlist(), fault=FaultSite("q", None, 0))
        outs = [sim.step({"en": 1})["Q"] for _ in range(3)]
        assert outs == [0, 0, 0]
