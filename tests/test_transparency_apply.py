"""Gate-level proof that transparency paths actually transport data.

These tests synthesize the test-mode hardware for a justification path
(select forcing, load forcing, freeze holds), elaborate to gates,
drive the freeze schedule the way the paper's test controller would,
and check that a value applied at the core input appears at the target
output slice after *exactly* the predicted latency.
"""

import pytest

from repro.designs import build_cpu, build_display, build_preprocessor
from repro.dft import insert_hscan
from repro.elaborate import elaborate
from repro.gates import SequentialSimulator
from repro.rtl import CircuitBuilder, Slice
from repro.rtl.types import Concat
from repro.transparency import generate_versions
from repro.transparency.apply import apply_transparency_path, freeze_schedule
from repro.util import int_to_bits


def deliver(circuit, path, value):
    """Apply ``value`` at the path's terminal input; return the output slice
    value observed after ``path.latency`` cycles."""
    app = apply_transparency_path(circuit, path)
    elab = elaborate(app.circuit)
    sim = SequentialSimulator(elab.netlist)

    input_ports = {t.comp for t in path.terminals}

    def words_for(step):
        words = {}
        for gate in elab.netlist.inputs:
            words[gate.name] = 0
        words[f"{app.mode_input}.0"] = 1
        for port in input_ports:
            width = app.circuit.get(port).width
            for i, bit in enumerate(int_to_bits(value & ((1 << width) - 1), width)):
                words[f"{port}.{i}"] = bit
        for register, hold_name in app.hold_inputs.items():
            words[f"{hold_name}.0"] = 1 if step in app.schedule.get(register, set()) else 0
        return words

    for step in range(path.latency):
        sim.step(words_for(step))
    # probe: outputs returned by a step reflect the state entering it
    outputs = sim.step(words_for(path.latency))
    root = path.root
    return sum((outputs[f"{root.comp}.{root.lo + i}"] & 1) << i for i in range(root.width))


@pytest.fixture(scope="module")
def cpu():
    circuit = build_cpu()
    return circuit, generate_versions(circuit, insert_hscan(circuit))


@pytest.fixture(scope="module")
def preprocessor():
    circuit = build_preprocessor()
    return circuit, generate_versions(circuit, insert_hscan(circuit))


class TestCpuPathsAtGateLevel:
    @pytest.mark.parametrize("value", [0x00, 0xFF, 0xA5, 0x3C])
    def test_v1_six_cycle_address_path(self, cpu, value):
        """Figure 4(b): Data reaches Address(7:0) after six cycles, with the
        early sub-path frozen one cycle to balance the split."""
        circuit, versions = cpu
        path = versions[0].justify_paths[("Address", 0, 8)]
        assert path.latency == 6
        assert path.freezes  # the balancing freeze must exist
        assert deliver(circuit, path, value) == value

    @pytest.mark.parametrize("value", [0x0F, 0x81])
    def test_v1_two_cycle_page_path(self, cpu, value):
        circuit, versions = cpu
        path = versions[0].justify_paths[("Address", 8, 4)]
        assert path.latency == 2
        assert deliver(circuit, path, value) == value & 0xF

    @pytest.mark.parametrize("value", [0x5A, 0xC3])
    def test_v2_one_cycle_mux_m_path(self, cpu, value):
        """Version 2 steals mux M: Data -> Address(7:0) in one cycle."""
        circuit, versions = cpu
        path = versions[1].justify_paths[("Address", 0, 8)]
        assert path.latency == 1
        assert deliver(circuit, path, value) == value

    def test_v3_added_mux_page_path(self, cpu):
        """Version 3's synthesized transparency mux (Figure 5)."""
        circuit, versions = cpu
        path = versions[2].justify_paths[("Address", 8, 4)]
        assert path.latency == 1
        assert deliver(circuit, path, 0x9) == 0x9

    def test_reset_to_read_control_chain(self, cpu):
        circuit, versions = cpu
        path = versions[0].justify_paths[("Read", 0, 1)]
        assert path.latency == 2
        assert deliver(circuit, path, 1) == 1
        assert deliver(circuit, path, 0) == 0


class TestPreprocessorPathsAtGateLevel:
    @pytest.mark.parametrize("value", [0x00, 0xFF, 0x2D])
    def test_v1_five_cycle_pipeline(self, preprocessor, value):
        circuit, versions = preprocessor
        path = versions[0].justify_paths[("DB", 0, 8)]
        assert path.latency == 5
        assert deliver(circuit, path, value) == value

    def test_v2_bypass(self, preprocessor):
        circuit, versions = preprocessor
        path = versions[1].justify_paths[("DB", 0, 8)]
        assert path.latency == 1
        assert deliver(circuit, path, 0x77) == 0x77


class TestFreezeSchedule:
    def test_balanced_paths_need_no_holds(self):
        b = CircuitBuilder("bal")
        a = b.input("A", 8)
        r1 = b.register("R1", 8)
        r2 = b.register("R2", 8)
        b.drive(r1, a)
        b.drive(r2, r1)
        b.output("O", r2)
        from repro.transparency import RCG, TransparencySearch

        path = TransparencySearch(RCG.from_circuit(b.build())).justify(Slice("O", 0, 8))
        assert freeze_schedule(path) == {}

    def test_unbalanced_register_holds_the_gap(self):
        """S (1 cycle) vs T1->T2 (2 cycles) into a C-split register."""
        b = CircuitBuilder("freezy")
        a = b.input("A", 8)
        s = b.register("S", 4)
        t1 = b.register("T1", 4)
        t2 = b.register("T2", 4)
        r = b.register("R", 8)
        b.drive(s, a.sub(0, 4))
        b.drive(t1, a.sub(4, 4))
        b.drive(t2, t1)
        b.drive(r, Concat((Slice("S", 0, 4), Slice("T2", 0, 4))))
        b.output("OUT", r)
        circuit = b.build()
        from repro.transparency import RCG, TransparencySearch

        path = TransparencySearch(RCG.from_circuit(circuit)).justify(Slice("OUT", 0, 8))
        assert path.latency == 3
        schedule = freeze_schedule(path)
        assert schedule == {"S": {1}}
        # and the hardware proof:
        assert deliver(circuit, path, 0xC5) == 0xC5

    def test_display_port_path(self):
        circuit = build_display()
        versions = generate_versions(circuit, insert_hscan(circuit))
        path = versions[0].justify_paths[("PORT1", 0, 7)]
        assert deliver(circuit, path, 0x55) == 0x55
