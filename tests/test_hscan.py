"""Tests for HSCAN insertion: chain construction, costs, and applied RTL."""

import pytest

from repro.dft import apply_hscan, insert_hscan
from repro.dft.scan import COST_DIRECT_LINK, COST_MUX_PATH_LINK, ScanUnit
from repro.elaborate import elaborate
from repro.gates import SequentialSimulator
from repro.rtl import CircuitBuilder
from repro.rtl.types import Concat
from repro.util import int_to_bits


def pipeline_circuit():
    """DIN -> R1 -> R2 -> R3 -> DOUT: a natural 3-deep chain, zero test muxes."""
    b = CircuitBuilder("pipe3")
    din = b.input("DIN", 8)
    r1 = b.register("R1", 8)
    r2 = b.register("R2", 8)
    r3 = b.register("R3", 8)
    b.drive(r1, din)
    b.drive(r2, r1)
    b.drive(r3, r2)
    b.output("DOUT", r3)
    return b.build()


def mux_path_circuit():
    """R2 loads from R1 through an existing mux -> link reuses it for 2 cells."""
    b = CircuitBuilder("muxy")
    din = b.input("DIN", 8)
    sel = b.input("SEL", 1)
    r1 = b.register("R1", 8)
    r2 = b.register("R2", 8)
    b.drive(r1, din)
    m = b.mux("M0", [din, r1], select=sel)
    b.drive(r2, m)
    b.output("DOUT", r2)
    return b.build()


def isolated_register_circuit():
    """R2 has no lossless path in -> needs a test mux and scan-in pin."""
    from repro.rtl import OpKind

    b = CircuitBuilder("iso")
    din = b.input("DIN", 8)
    r1 = b.register("R1", 8)
    r2 = b.register("R2", 8)
    b.drive(r1, din)
    added = b.op("ADD", OpKind.ADD, [r1, din])
    b.drive(r2, added)
    b.output("DOUT", r2)
    return b.build()


class TestInsertHscan:
    def test_pipeline_single_chain(self):
        plan = insert_hscan(pipeline_circuit())
        assert plan.depth == 3
        assert plan.scan_in_width == 0
        assert all(link.kind == "direct" for link in plan.links)
        assert plan.extra_area == 3 * COST_DIRECT_LINK  # 3 direct links, tail visible at DOUT

    def test_pipeline_chain_order(self):
        plan = insert_hscan(pipeline_circuit())
        assert len(plan.chains) == 1
        assert [u.comp for u in plan.chains[0]] == ["R1", "R2", "R3"]

    def test_mux_path_reuse(self):
        plan = insert_hscan(mux_path_circuit())
        r2_link = plan.link_for(ScanUnit("R2", 0, 8))
        assert r2_link.kind == "mux"
        assert r2_link.cost == COST_MUX_PATH_LINK
        assert r2_link.source.comp == "R1"

    def test_isolated_register_gets_test_mux(self):
        plan = insert_hscan(isolated_register_circuit())
        r2_link = plan.link_for(ScanUnit("R2", 0, 8))
        assert r2_link.kind == "testmux"
        assert plan.scan_in_width == 8

    def test_every_register_bit_covered(self):
        for circuit in (pipeline_circuit(), mux_path_circuit(), isolated_register_circuit()):
            plan = insert_hscan(circuit)
            for register in circuit.registers:
                covered = sorted(
                    (l.dest.lo, l.dest.hi) for l in plan.links if l.dest.comp == register.name
                )
                cursor = 0
                for lo, hi in covered:
                    assert lo == cursor
                    cursor = hi
                assert cursor == register.width

    def test_split_register_two_units(self):
        b = CircuitBuilder("split")
        a = b.input("A", 4)
        c = b.input("C", 4)
        r = b.register("R", 8)
        b.drive(r, Concat((a, c)))
        b.output("O", r)
        plan = insert_hscan(b.build())
        r_units = [u for u in plan.units if u.comp == "R"]
        assert len(r_units) == 2

    def test_self_loop_register_avoided(self):
        """A register whose only path is from itself must get a test mux."""
        b = CircuitBuilder("self")
        din = b.input("DIN", 1)
        sel = b.input("SEL", 1)
        r = b.register("R", 8)
        m = b.mux("M", [r, r], select=sel)
        b.drive(r, m)
        b.output("O", r)
        # give validity: R only reachable from itself
        plan = insert_hscan(b.build())
        link = plan.link_for(ScanUnit("R", 0, 8))
        assert link.kind == "testmux"


class TestApplyHscan:
    def test_scan_shift_works_end_to_end(self):
        circuit = pipeline_circuit()
        modified, plan = apply_hscan(circuit)
        elab = elaborate(modified)
        sim = SequentialSimulator(elab.netlist)

        def step(din, scan_en):
            words = {"scan_en.0": scan_en}
            for i, bit in enumerate(int_to_bits(din, 8)):
                words[f"DIN.{i}"] = bit
            return sim.step(words)

        # shift three values in scan mode: they march down the chain
        step(0xAB, 1)
        step(0xCD, 1)
        out = step(0xEF, 1)
        # after 3 shifts, R3 holds the first value, visible at DOUT next cycle
        final = step(0, 1)
        value = sum((final[f"DOUT.{i}"] & 1) << i for i in range(8))
        assert value == 0xAB

    def test_functional_mode_unchanged(self):
        circuit = pipeline_circuit()
        modified, _ = apply_hscan(circuit)
        elab = elaborate(modified)
        sim = SequentialSimulator(elab.netlist)
        words = {"scan_en.0": 0}
        for i, bit in enumerate(int_to_bits(0x5A, 8)):
            words[f"DIN.{i}"] = bit
        sim.step(words)
        zero_words = {"scan_en.0": 0}
        for i in range(8):
            zero_words[f"DIN.{i}"] = 0
        sim.step(zero_words)
        sim.step(zero_words)
        out = sim.step(zero_words)  # R3 captured the value after 3 cycles
        value = sum((out[f"DOUT.{i}"] & 1) << i for i in range(8))
        assert value == 0x5A

    def test_scan_in_port_added_when_needed(self):
        modified, plan = apply_hscan(isolated_register_circuit())
        assert "scan_in" in modified
        assert modified.get("scan_in").width == plan.scan_in_width

    def test_enable_registers_forced_in_scan_mode(self):
        b = CircuitBuilder("en")
        din = b.input("DIN", 4)
        en = b.input("EN", 1)
        r = b.register("R", 4, enable=en)
        b.drive(r, din)
        b.output("O", r)
        modified, _ = apply_hscan(b.build())
        elab = elaborate(modified)
        sim = SequentialSimulator(elab.netlist)
        words = {"scan_en.0": 1, "EN.0": 0}
        for i, bit in enumerate(int_to_bits(0xF, 4)):
            words[f"DIN.{i}"] = bit
        sim.step(words)
        # despite EN=0, scan mode loads the register
        assert sim.states["R.0"] == 1
