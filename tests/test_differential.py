"""Differential replay: certified paths versus the gate-level simulator.

The certifier's identity anchor, as a test suite: "proved" must mean
the simulator transports the bits, and "refuted" must be observable as
a transport failure (or an unrealizable mode) on the same hardware.
"""

import random

import pytest

from tests.fixtures import broken_designs as bd
from repro.analysis import (
    certify_version,
    fresh_known_arcs,
    prove_path,
    replay_path,
    replay_refutes,
    replay_soc,
)
from repro.rtl import CircuitBuilder
from repro.soc import Core

SYSTEMS = ["System1", "System2", "System3", "System4"]


def build(system):
    from repro.designs import system_builders

    return system_builders()[system]()


def version_paths(version):
    paths = [version.justify_paths[key] for key in sorted(version.justify_paths)]
    paths += [version.propagate_paths[key] for key in sorted(version.propagate_paths)]
    return paths


# ----------------------------------------------------------------------
# every proved path of every system transports on the simulator
# ----------------------------------------------------------------------
class TestSystemsReplay:
    @pytest.mark.parametrize("system", SYSTEMS)
    def test_all_proved_paths_transport(self, system):
        results = replay_soc(build(system))
        assert results
        failing = [r for r in results if not r.ok]
        assert failing == []

    def test_replay_covers_every_version(self):
        soc = build("System2")
        results = replay_soc(soc)
        covered = {(r.core, r.version_index) for r in results}
        expected = {
            (core.name, version.index)
            for core in soc.testable_cores()
            for version in core.versions
        }
        assert covered == expected

    def test_replay_is_deterministic(self):
        first = [r.to_dict() for r in replay_soc(build("System2"))]
        second = [r.to_dict() for r in replay_soc(build("System2"))]
        assert first == second


# ----------------------------------------------------------------------
# refutations are observable on the same hardware
# ----------------------------------------------------------------------
class TestRefutationsReplay:
    def refuted(self, soc):
        core = soc.cores["A"]
        for version in core.versions:
            certificate = certify_version(
                core.circuit, version, core_name=core.name, hscan=core.hscan
            )
            for record in certificate.paths:
                if record.proved:
                    continue
                if record.direction == "justify":
                    path = version.justify_paths[record.key]
                else:
                    path = version.propagate_paths[record.key[0]]
                yield core, path, record.proof

    def test_narrowed_core_fails_on_hardware(self):
        found = list(self.refuted(bd.narrowed_transparency_soc()))
        assert found
        for core, path, proof in found:
            assert replay_refutes(core.circuit, path, proof=proof), str(path.root)

    def test_mux_conflict_unrealizable_on_hardware(self):
        found = list(self.refuted(bd.mux_conflict_soc()))
        assert found
        for core, path, proof in found:
            assert replay_refutes(core.circuit, path, proof=proof), str(path.root)

    def test_unproved_path_is_not_replayed_as_ok(self):
        soc = bd.narrowed_transparency_soc()
        core = soc.cores["A"]
        version = core.versions[0]
        path = version.propagate_paths["INHI"]
        result = replay_path(core.circuit, path, core="A")
        # replay_path re-proves against the declared tree; this path's
        # claims fail on the tampered netlist either way
        assert not result.ok

    def test_replay_soc_skips_refuted_paths(self):
        results = replay_soc(bd.narrowed_transparency_soc())
        assert all(r.ok for r in results)
        ports = {r.port for r in results}
        assert not any("INHI" in port for port in ports)


# ----------------------------------------------------------------------
# property-style: random RCGs certify soundly and replay clean
# ----------------------------------------------------------------------
def random_core(seed):
    """A seeded random register/mux topology, HSCAN'd and versioned."""
    rng = random.Random(f"rcg:{seed}")
    width = rng.choice([4, 8])
    b = CircuitBuilder(f"RND{seed}")
    signals = [b.input(f"I{k}", width) for k in range(rng.randint(1, 3))]
    for i in range(rng.randint(1, 3)):
        if rng.random() < 0.5 and len(signals) >= 2:
            sel = b.input(f"S{i}", 1)
            legs = rng.sample(signals, 2)
            driver = b.mux(f"M{i}", legs, sel, width=width)
        else:
            driver = rng.choice(signals)
        reg = b.register(f"R{i}", width)
        b.drive(reg, driver)
        signals.append(reg)
    b.output("OUT", signals[-1])
    return Core.from_circuit(b.build(), test_vectors=4)


class TestRandomCores:
    @pytest.mark.parametrize("seed", range(8))
    def test_generated_versions_prove_and_transport(self, seed):
        """Version generation is sound: every declared path is provable
        against the freshly extracted RCG, and every proof replays."""
        core = random_core(seed)
        assert core.versions
        checked = 0
        for version in core.versions:
            known = fresh_known_arcs(core.circuit, version, core.hscan)
            for path in version_paths(version):
                proof = prove_path(core.circuit, path, known_arcs=known)
                assert proof.proved, f"seed {seed}: {path.root}: {proof.reasons}"
                result = replay_path(
                    core.circuit, path, proof=proof,
                    core=core.name, version_index=version.index,
                )
                assert result.ok, f"seed {seed}: {path.root}: {result.detail}"
                checked += 1
        assert checked > 0
