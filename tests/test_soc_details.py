"""Detailed tests for planner internals, CCG, controller, and reports."""

import pytest

from repro.designs import build_system1, build_system2
from repro.flow.report import (
    AreaRow,
    TestabilityRow as ResultRow,
    render_area_table,
    render_testability_table,
)
from repro.soc import build_ccg, plan_soc_test, synthesize_controller
from repro.soc.ccg import shortest_justification
from repro.soc.controller import clock_enable_trace
from repro.soc.plan import TestMux as SystemTestMux
from repro.soc.optimizer import SocetOptimizer


@pytest.fixture(scope="module")
def system1():
    return build_system1()


@pytest.fixture(scope="module")
def system1_plan(system1):
    return plan_soc_test(system1)


class TestPlanInvariants:
    def test_every_selection_plans_successfully(self, system1):
        """All 27 version combinations must produce a consistent plan."""
        import itertools

        cores = system1.testable_cores()
        for combo in itertools.product(*[range(c.version_count) for c in cores]):
            selection = {core.name: index for core, index in zip(cores, combo)}
            plan = plan_soc_test(system1, selection)
            for core_plan in plan.core_plans.values():
                assert core_plan.cadence >= 1
                assert core_plan.tat == core_plan.scan_steps * core_plan.cadence + core_plan.flush
                for delivery in core_plan.deliveries:
                    assert delivery.latency >= 0
            assert plan.total_tat == sum(p.tat for p in plan.core_plans.values())
            assert plan.chip_dft_cells == (
                plan.version_cells + plan.test_mux_cells + plan.controller_cells
            )

    def test_faster_versions_never_slow_a_single_core(self, system1):
        """Upgrading one core's version must not slow that same core's own test
        beyond the baseline plan (its deliveries/observations can only improve
        or stay)."""
        base = plan_soc_test(system1)
        for core in system1.testable_cores():
            for index in range(1, core.version_count):
                selection = dict(base.selection)
                selection[core.name] = index
                upgraded = plan_soc_test(system1, selection)
                # other cores' tests can only get faster when this core's
                # transparency improves
                for other in system1.testable_cores():
                    if other.name == core.name:
                        continue
                    assert (
                        upgraded.core_plans[other.name].tat
                        <= base.core_plans[other.name].tat
                    ), (core.name, index, other.name)

    def test_usage_counts_are_positive(self, system1_plan):
        for key, count in system1_plan.usage_counts().items():
            assert count > 0
            assert key[1] in ("justify", "propagate")

    def test_test_mux_costs(self):
        mux = SystemTestMux("input", "X", "P", 0, 8)
        assert mux.cost == 2 * 8 + 2
        assert "P" in str(mux)


class TestCcgDetails:
    def test_ccg_nodes_match_paper_structure(self, system1):
        ccg = build_ccg(system1)
        kinds = {}
        for _, data in ccg.nodes(data=True):
            kinds[data["kind"]] = kinds.get(data["kind"], 0) + 1
        assert kinds["PI"] == 3  # Video, NUM, Reset
        assert kinds["PO"] == 6  # PORT1..6
        # CPU's Address splits: the two justification slices must be
        # present (finer propagate-terminal slices may add more nodes)
        address_nodes = {
            (n[3], n[4])
            for n in ccg.nodes
            if n[0] == "CO" and n[1] == "CPU" and n[2] == "Address"
        }
        assert {(0, 8), (8, 4)} <= address_nodes

    def test_memory_cores_absent_from_ccg(self, system1):
        ccg = build_ccg(system1)
        assert not any(len(n) > 1 and n[1] in ("RAM", "ROM") for n in ccg.nodes)

    def test_display_justification_route(self, system1):
        """Figure 9's highlighted path: NUM -> DB -> Data -> Address -> A."""
        ccg = build_ccg(system1, {"CPU": 0, "PREPROCESSOR": 1, "DISPLAY": 0})
        target = ("CO", "CPU", "Address", 0, 8)
        result = shortest_justification(ccg, target)
        assert result is not None
        cost, path = result
        assert path[0] == ("PI", "NUM")
        names = [node[1] for node in path if node[0] in ("CI", "CO")]
        assert names[:2] == ["PREPROCESSOR", "PREPROCESSOR"]
        assert cost == 1 + 6  # PRE V2 DB edge + CPU slice edge (no reservation here)

    def test_unreachable_node_returns_none(self, system1):
        ccg = build_ccg(system1)
        assert shortest_justification(ccg, ("PO", "nonexistent")) is None


class TestControllerDetails:
    def test_mux_select_signals_enumerated(self, system1_plan):
        controller = synthesize_controller(system1_plan)
        selects = [s for s in controller.signals if s.purpose == "mux-select"]
        # the CPU's paths steer at least DR_MUX/AC_MUX/PC_MUX/M
        named = {s.name for s in selects}
        assert any("CPU_M" in name for name in named)
        assert controller.counter_bits >= system1_plan.total_tat.bit_length() - 1

    def test_trace_flush_is_free_running(self, system1_plan):
        core_plan = system1_plan.core_plans["CPU"]
        trace = list(clock_enable_trace(core_plan))
        flush = trace[-core_plan.flush :] if core_plan.flush else []
        assert all(flush)


class TestOptimizerDetails:
    def test_most_critical_port_points_at_slowest_path(self, system1):
        plan = plan_soc_test(system1)
        optimizer = SocetOptimizer(system1)
        critical = optimizer.most_critical_port(plan)
        assert critical is not None
        core_name, port = critical
        slowest = max(plan.core_plans.values(), key=lambda p: p.tat)
        assert core_name == slowest.core

    def test_replacement_gain_none_at_top_version(self, system1):
        top = {c.name: c.version_count - 1 for c in system1.testable_cores()}
        plan = plan_soc_test(system1, top)
        optimizer = SocetOptimizer(system1)
        for core in system1.testable_cores():
            assert optimizer.replacement_gain(plan, core.name) is None


class TestReportRendering:
    def test_area_table_renders(self):
        row = AreaRow(
            system="S",
            original_area=1000,
            fscan_cells=150,
            hscan_cells=80,
            bscan_cells=400,
            socet_variant="Min. Area",
            socet_chip_cells=60,
        )
        text = render_area_table([row])
        assert "15.0" in text and "8.0" in text and "6.0" in text
        assert row.fscan_bscan_total_percent == pytest.approx(55.0)
        assert row.socet_total_percent == pytest.approx(14.0)

    def test_testability_table_renders(self):
        rows = [
            ResultRow("S", "Orig.", 10.6, 10.8, None),
            ResultRow("S", "SOCET", 98.4, 99.8, 17387),
        ]
        text = render_testability_table(rows)
        assert "17387" in text
        assert "-" in text  # missing TAT renders as dash
