"""Tests for the fault model, collapsing, and fault simulation."""

import pytest

from repro.faults import (
    Fault,
    FaultSimulator,
    collapse_faults,
    full_fault_universe,
    sequential_fault_grade,
)
from repro.faults.coverage import CoverageReport
from repro.gates import GateKind, GateNetlist


def and_netlist():
    n = GateNetlist("and2")
    n.add_gate("a", GateKind.INPUT)
    n.add_gate("b", GateKind.INPUT)
    n.add_gate("y", GateKind.AND, ["a", "b"])
    n.add_gate("Y", GateKind.OUTPUT, ["y"])
    return n.validate()


def fanout_netlist():
    """a drives both an AND and an OR -> pin faults exist on the branches."""
    n = GateNetlist("fan")
    n.add_gate("a", GateKind.INPUT)
    n.add_gate("b", GateKind.INPUT)
    n.add_gate("g1", GateKind.AND, ["a", "b"])
    n.add_gate("g2", GateKind.OR, ["a", "b"])
    n.add_gate("Y1", GateKind.OUTPUT, ["g1"])
    n.add_gate("Y2", GateKind.OUTPUT, ["g2"])
    return n.validate()


class TestUniverse:
    def test_and2_universe(self):
        faults = full_fault_universe(and_netlist())
        # stems: a, b, y (2 each); no pin faults (all nets single-fanout... a,b feed only y)
        assert len(faults) == 6

    def test_fanout_creates_pin_faults(self):
        faults = full_fault_universe(fanout_netlist())
        pin_faults = [f for f in faults if f.pin is not None]
        # a and b each fan out to g1 and g2: 2 pins x 2 gates x 2 values
        assert len(pin_faults) == 8

    def test_no_faults_on_output_markers(self):
        faults = full_fault_universe(and_netlist())
        assert not any(f.gate == "Y" for f in faults)

    def test_no_faults_on_constants(self):
        n = GateNetlist("c")
        n.add_gate("a", GateKind.INPUT)
        n.add_gate("k", GateKind.CONST1)
        n.add_gate("y", GateKind.AND, ["a", "k"])
        n.add_gate("Y", GateKind.OUTPUT, ["y"])
        faults = full_fault_universe(n.validate())
        assert not any(f.gate == "k" and f.pin is None for f in faults)


class TestCollapse:
    def test_and_collapse(self):
        n = fanout_netlist()
        faults = full_fault_universe(n)
        collapsed = collapse_faults(n, faults)
        # g1 (AND): pin sa0 faults merge into stem sa0 (2 pins collapse away)
        # g2 (OR): pin sa1 faults merge into stem sa1 (2 pins collapse away)
        assert len(collapsed) == len(faults) - 4

    def test_collapse_is_deterministic(self):
        n = fanout_netlist()
        faults = full_fault_universe(n)
        assert collapse_faults(n, faults) == collapse_faults(n, faults)

    def test_not_chain_collapse(self):
        n = GateNetlist("inv")
        n.add_gate("a", GateKind.INPUT)
        n.add_gate("n1", GateKind.NOT, ["a"])
        n.add_gate("Y", GateKind.OUTPUT, ["n1"])
        faults = full_fault_universe(n.validate())
        collapsed = collapse_faults(n, faults)
        # a/sa0, a/sa1, n1/sa0, n1/sa1: inverter merges nothing here (no pin faults
        # enumerated since fanout is 1), so 4 remain
        assert len(collapsed) == 4


class TestFaultSimulator:
    def test_and_gate_full_coverage(self):
        n = and_netlist()
        faults = collapse_faults(n, full_fault_universe(n))
        sim = FaultSimulator(n)
        patterns = [
            {"a": 1, "b": 1},
            {"a": 0, "b": 1},
            {"a": 1, "b": 0},
        ]
        result = sim.run(patterns, faults)
        assert result.coverage == 100.0
        assert not result.undetected

    def test_insufficient_patterns_leave_faults(self):
        n = and_netlist()
        faults = collapse_faults(n, full_fault_universe(n))
        sim = FaultSimulator(n)
        result = sim.run([{"a": 1, "b": 1}], faults)
        # the single pattern detects y/sa0, a/sa0, b/sa0 but no sa1 faults
        assert 0 < len(result.detected) < len(faults)
        assert result.detected and all(f.stuck == 0 for f in result.detected)

    def test_first_detection_index(self):
        n = and_netlist()
        sim = FaultSimulator(n)
        fault = Fault("y", None, 0)
        result = sim.run([{"a": 0, "b": 0}, {"a": 1, "b": 1}], [fault])
        assert result.first_detection[fault] == 1

    def test_pin_fault_detection(self):
        n = fanout_netlist()
        sim = FaultSimulator(n)
        fault = Fault("g1", 0, 1)  # AND pin a stuck at 1
        result = sim.run([{"a": 0, "b": 1}], [fault])
        assert fault in result.detected

    def test_observation_at_flop_d_pin(self):
        n = GateNetlist("seq")
        n.add_gate("a", GateKind.INPUT)
        n.add_gate("inv", GateKind.NOT, ["a"])
        n.add_gate("f", GateKind.DFF, ["inv"])
        n.add_gate("Y", GateKind.OUTPUT, ["f"])
        n.validate()
        sim = FaultSimulator(n)
        fault = Fault("inv", None, 0)
        result = sim.run([{"a": 0, "f": 0}], [fault])
        assert fault in result.detected  # observed at the D pin, not the PO

    def test_flop_pin_fault(self):
        n = GateNetlist("seq")
        n.add_gate("a", GateKind.INPUT)
        n.add_gate("b", GateKind.INPUT)
        n.add_gate("g", GateKind.AND, ["a", "b"])
        n.add_gate("f", GateKind.DFF, ["g"])
        n.add_gate("h", GateKind.OR, ["g", "f"])
        n.add_gate("Y", GateKind.OUTPUT, ["h"])
        n.validate()
        sim = FaultSimulator(n)
        fault = Fault("f", 0, 0)  # D pin stuck at 0
        result = sim.run([{"a": 1, "b": 1, "f": 0}], [fault])
        assert fault in result.detected


class TestSequentialGrade:
    def toggle(self):
        n = GateNetlist("t")
        n.add_gate("en", GateKind.INPUT)
        n.add_gate("q", GateKind.DFF, ["d"])
        n.add_gate("d", GateKind.XOR, ["q", "en"])
        n.add_gate("Q", GateKind.OUTPUT, ["q"])
        return n.validate()

    def test_detects_stuck_flop(self):
        n = self.toggle()
        fault = Fault("q", None, 0)
        sequences = [[{"en": 1}, {"en": 0}, {"en": 0}]]
        result = sequential_fault_grade(n, sequences, [fault])
        assert fault in result.detected

    def test_undetected_without_activity(self):
        n = self.toggle()
        fault = Fault("q", None, 0)
        sequences = [[{"en": 0}, {"en": 0}]]
        result = sequential_fault_grade(n, sequences, [fault])
        assert fault in result.undetected

    def test_sampling_bounds_total(self):
        n = self.toggle()
        faults = collapse_faults(n, full_fault_universe(n))
        sequences = [[{"en": 1}] * 4]
        result = sequential_fault_grade(n, sequences, faults, sample=2, seed=1)
        assert result.total == 2

    def test_unequal_lengths_rejected(self):
        n = self.toggle()
        with pytest.raises(Exception):
            sequential_fault_grade(n, [[{"en": 1}], [{"en": 1}, {"en": 0}]], [])

    def test_unequal_lengths_error_reports_counts(self):
        from repro.errors import SimulationError

        n = self.toggle()
        with pytest.raises(SimulationError, match=r"sequence 1 has 2 cycles, expected 1"):
            sequential_fault_grade(n, [[{"en": 1}], [{"en": 1}, {"en": 0}]], [])

    def test_more_sequences_than_pack_limit_chunks(self, monkeypatch):
        """Beyond-pack-limit stimulus sets grade in chunks instead of raising."""
        import repro.faults.simulator as fsim

        n = self.toggle()
        faults = collapse_faults(n, full_fault_universe(n))
        # one detecting sequence buried past the (shrunk) pack limit
        sequences = [[{"en": 0}, {"en": 0}, {"en": 0}]] * 5 + [
            [{"en": 1}, {"en": 0}, {"en": 0}]
        ]
        baseline = sequential_fault_grade(n, sequences, list(faults))

        monkeypatch.setattr(fsim, "SEQUENCE_PACK_LIMIT", 2)
        chunked = sequential_fault_grade(n, sequences, list(faults))
        assert set(chunked.detected) == set(baseline.detected)
        assert set(chunked.undetected) == set(baseline.undetected)
        assert chunked.total == baseline.total

    def test_large_pack_no_longer_raises(self, monkeypatch):
        import repro.faults.simulator as fsim

        n = self.toggle()
        fault = Fault("q", None, 0)
        monkeypatch.setattr(fsim, "SEQUENCE_PACK_LIMIT", 4)
        sequences = [[{"en": 0}, {"en": 0}]] * 9 + [[{"en": 1}, {"en": 0}]] * 2
        result = sequential_fault_grade(n, sequences, [fault])
        assert result.total == 1
        assert fault in result.detected


class TestSharedConeCache:
    def test_cones_shared_across_simulators(self):
        """Two simulators over one netlist reuse the same cone entries."""
        from repro.obs import METRICS

        n = and_netlist()
        faults = collapse_faults(n, full_fault_universe(n))
        patterns = [{"a": 1, "b": 1}, {"a": 0, "b": 1}, {"a": 1, "b": 0}]

        first = FaultSimulator(n)
        first.run(patterns, list(faults))
        builds_after_first = METRICS.counter("faultsim.cone.builds").value

        reuses_before = METRICS.counter("faultsim.cone.reuses").value
        second = FaultSimulator(n)
        second.run(patterns, list(faults))
        assert METRICS.counter("faultsim.cone.builds").value == builds_after_first
        assert METRICS.counter("faultsim.cone.reuses").value > reuses_before

    def test_shared_cache_results_identical(self):
        n = fanout_netlist()
        faults = collapse_faults(n, full_fault_universe(n))
        patterns = [{"a": 1, "b": 0}, {"a": 0, "b": 1}, {"a": 1, "b": 1}]
        cold = FaultSimulator(n).run(patterns, list(faults))
        warm = FaultSimulator(n).run(patterns, list(faults))
        assert cold.detected == warm.detected
        assert cold.undetected == warm.undetected


class TestCoverageReport:
    def test_metrics(self):
        report = CoverageReport(total=100, detected=90, redundant=8, aborted=2)
        assert report.fault_coverage == 90.0
        assert report.test_efficiency == 98.0

    def test_empty_population(self):
        report = CoverageReport(total=0, detected=0)
        assert report.fault_coverage == 100.0

    def test_merge(self):
        a = CoverageReport(total=10, detected=9, redundant=1)
        b = CoverageReport(total=20, detected=16, redundant=0)
        merged = a.merged_with(b)
        assert merged.total == 30
        assert merged.detected == 25
        assert merged.test_efficiency == pytest.approx(100 * 26 / 30)
