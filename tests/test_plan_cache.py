"""Tests for the incremental planning cache (``repro.exec.cache``).

The headline regression: design-space sweeps and optimizer runs with the
cache on produce exactly the same DesignPoint TAT/area sequences (and
test-mux lists) as runs with it off, on every registered system.
"""

import pytest

from repro.designs import system_builders
from repro.exec import (
    CACHE_ENV,
    cache_enabled,
    invalidate_plan_cache,
    plan_cache_for,
    soc_fingerprint,
    soc_signature,
)
from repro.obs import METRICS
from repro.soc.optimizer import SocetOptimizer, design_space
from repro.soc.plan import plan_soc_test

SYSTEMS = sorted(system_builders())


def build(system):
    return system_builders()[system]()


class TestCacheToggles:
    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV, raising=False)
        assert cache_enabled()

    @pytest.mark.parametrize("value", ["0", "false", "off", "no"])
    def test_env_disables(self, monkeypatch, value):
        monkeypatch.setenv(CACHE_ENV, value)
        assert not cache_enabled()


class TestFingerprints:
    def test_identical_builds_fingerprint_identically(self):
        assert soc_fingerprint(build("System1")) == soc_fingerprint(build("System1"))

    def test_different_systems_differ(self):
        assert soc_fingerprint(build("System1")) != soc_fingerprint(build("System2"))

    def test_signature_tracks_structure(self):
        soc = build("System1")
        before = soc_signature(soc)
        assert soc_signature(soc) == before


class TestCacheLifecycle:
    def test_attached_once_and_reused(self):
        soc = build("System1")
        cache = plan_cache_for(soc)
        assert plan_cache_for(soc) is cache

    def test_sweep_populates_and_hits(self):
        # System3's cores have disjoint path footprints, so most of the
        # sweep's per-core plans are cache hits (System1's footprints span
        # every core, which legitimately defeats reuse there).
        soc = build("System3")
        hits_before = METRICS.counter("exec.cache.hits").value
        design_space(soc, use_cache=True)
        assert len(plan_cache_for(soc, create=False)) > 0
        assert METRICS.counter("exec.cache.hits").value > hits_before

    def test_structural_change_invalidates(self):
        from repro.designs import build_gcd
        from repro.soc import Core

        soc = build("System1")
        cache = plan_cache_for(soc)
        soc.add_core(Core.from_circuit(build_gcd(), test_vectors=4))
        invalidations = METRICS.counter("exec.cache.invalidations").value
        fresh = plan_cache_for(soc)
        assert fresh is not cache
        assert METRICS.counter("exec.cache.invalidations").value == invalidations + 1

    def test_explicit_invalidation(self):
        soc = build("System1")
        plan_cache_for(soc)
        invalidate_plan_cache(soc)
        assert plan_cache_for(soc, create=False) is None


class TestCachedSweepIdentical:
    """Satellite: cache on vs off -> identical TAT/area on every system."""

    def _point_key(self, point):
        return (
            tuple(sorted(point.selection.items())),
            point.tat,
            point.chip_cells,
            tuple(str(m) for m in point.plan.test_muxes),
        )

    @pytest.mark.parametrize("system", SYSTEMS)
    def test_design_space_identical(self, system):
        cold = design_space(build(system), use_cache=False)
        warm = design_space(build(system), use_cache=True)
        assert [self._point_key(p) for p in warm] == [
            self._point_key(p) for p in cold
        ]

    def test_repeat_plan_calls_identical(self):
        soc = build("System2")
        selection = {name: 0 for name in soc.cores}
        first = plan_soc_test(soc, selection=selection, use_cache=True)
        second = plan_soc_test(soc, selection=selection, use_cache=True)
        assert first.total_tat == second.total_tat
        assert [str(m) for m in first.test_muxes] == [
            str(m) for m in second.test_muxes
        ]


class TestOptimizerTrajectories:
    @pytest.mark.parametrize("system", ["System1", "System2"])
    def test_minimize_tat_identical(self, monkeypatch, system):
        def run(enabled):
            monkeypatch.setenv(CACHE_ENV, "1" if enabled else "0")
            soc = build(system)
            points = design_space(soc)
            budget = max(p.chip_cells for p in points)
            plan, trajectory = SocetOptimizer(soc).minimize_tat(budget)
            return plan.total_tat, plan.chip_dft_cells, [
                (step.tat, step.chip_cells) for step in trajectory
            ]

        assert run(True) == run(False)
