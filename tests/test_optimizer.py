"""Edge-path tests for the SOCET optimizer and the chip-level run.

Covers the ``minimize_area`` infeasible-budget error, the
``minimize_tat`` no-improving-move early exit, the scheduled-makespan
objective (``use_schedule=True``), and the explicit min-area point
selection in :class:`SocetRun`.
"""

import pytest

from repro.errors import InfeasibleConstraintError
from repro.flow.chiplevel import SocetRun
from repro.rtl import CircuitBuilder
from repro.soc import Core, Soc, plan_soc_test
from repro.soc.optimizer import DesignPoint, SocetOptimizer


def passthrough_core(name, width=8, depth=1):
    b = CircuitBuilder(name)
    din = b.input("IN", width)
    previous = din
    for i in range(depth):
        reg = b.register(f"R{i}", width)
        b.drive(reg, previous)
        previous = reg
    b.output("OUT", previous)
    return b.build()


def parallel_soc(names=("A", "B", "C")):
    """Independent pin-attached cores: nothing for the optimizer to fix."""
    soc = Soc("parallel")
    for name in names:
        soc.add_core(Core.from_circuit(passthrough_core(name), test_vectors=8))
        soc.add_input(f"PIN_{name}", 8)
        soc.add_output(f"POUT_{name}", 8)
        soc.wire(None, f"PIN_{name}", name, "IN")
        soc.wire(name, "OUT", None, f"POUT_{name}")
    return soc


def chain_soc():
    """PI -> A(depth 2) -> B(depth 1) -> PO: versions can still help."""
    soc = Soc("duo")
    soc.add_core(Core.from_circuit(passthrough_core("A", depth=2), test_vectors=10))
    soc.add_core(Core.from_circuit(passthrough_core("B", depth=1), test_vectors=10))
    soc.add_input("PIN", 8)
    soc.add_output("POUT", 8)
    soc.wire(None, "PIN", "A", "IN")
    soc.wire("A", "OUT", "B", "IN")
    soc.wire("B", "OUT", None, "POUT")
    return soc


class TestMinimizeAreaEdges:
    def test_unreachable_tat_budget_raises_with_floor(self):
        soc = parallel_soc()
        plan = plan_soc_test(soc)
        with pytest.raises(InfeasibleConstraintError, match="unreachable"):
            SocetOptimizer(soc).minimize_area(plan.total_tat - 1)

    def test_loose_budget_returns_min_area_immediately(self):
        soc = parallel_soc()
        plan = plan_soc_test(soc)
        result, trajectory = SocetOptimizer(soc).minimize_area(plan.total_tat)
        assert len(trajectory) == 1
        assert result.selection == plan.selection


class TestMinimizeTatEdges:
    def test_no_improving_move_exits_early(self):
        soc = parallel_soc()
        result, trajectory = SocetOptimizer(soc).minimize_tat(max_chip_cells=10_000)
        # all latencies are already 0: nothing to upgrade, nothing to mux
        assert len(trajectory) == 1
        assert result.total_tat == trajectory[0].tat

    def test_escalation_stops_at_budget(self):
        soc = chain_soc()
        baseline = plan_soc_test(soc)
        plan, _ = SocetOptimizer(soc).minimize_tat(max_chip_cells=baseline.chip_dft_cells)
        assert plan.chip_dft_cells <= baseline.chip_dft_cells
        assert plan.total_tat <= baseline.total_tat


class TestScheduledObjective:
    def test_makespan_budget_feasible_only_with_schedule(self):
        soc = parallel_soc()
        plan = plan_soc_test(soc)
        makespan = plan.scheduled_tat
        assert makespan < plan.total_tat
        # serial objective cannot reach the makespan budget...
        with pytest.raises(InfeasibleConstraintError):
            SocetOptimizer(soc).minimize_area(makespan)
        # ...the scheduled objective meets it without any moves
        result, trajectory = SocetOptimizer(soc, use_schedule=True).minimize_area(makespan)
        assert len(trajectory) == 1
        assert result.scheduled_tat <= makespan

    def test_trajectory_records_makespan(self):
        soc = parallel_soc()
        optimizer = SocetOptimizer(soc, use_schedule=True)
        plan, trajectory = optimizer.minimize_tat(max_chip_cells=10_000)
        assert trajectory[-1].tat == plan.scheduled_tat

    def test_serial_default_unchanged(self):
        soc = chain_soc()
        plan, trajectory = SocetOptimizer(soc).minimize_tat(max_chip_cells=10_000)
        assert trajectory[-1].tat == plan.total_tat

    def test_power_budget_threads_through(self):
        soc = parallel_soc(names=("A", "B"))
        activity = max(c.flip_flops for c in soc.testable_cores())
        optimizer = SocetOptimizer(soc, use_schedule=True, power_budget=activity)
        plan, trajectory = optimizer.minimize_tat(max_chip_cells=10_000)
        # one core at a time fits the budget: objective equals the serial sum
        assert trajectory[-1].tat == plan.total_tat


class TestMinAreaPointSelection:
    def _point(self, index, cells, tat):
        return DesignPoint(index=index, selection={}, tat=tat, chip_cells=cells)

    def test_min_area_point_ignores_list_order(self):
        # deliberately NOT sorted by chip cells: the property must not
        # rely on design_space's ordering
        points = [
            self._point(1, 300, 100),
            self._point(2, 120, 900),
            self._point(3, 120, 700),
        ]
        run = SocetRun(
            soc=None, points=points, min_area_plan=None, min_tat_plan=None, baseline=None
        )
        assert run.min_area_point.chip_cells == 120
        assert run.min_area_point.tat == 700  # ties broken by TAT
        assert run.min_tat_point.tat == 100
