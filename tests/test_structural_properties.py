"""Structural property tests over random RTL circuits.

Invariants of HSCAN insertion and version synthesis that must hold for
*any* well-formed circuit, not just the paper's examples:

* every register bit joins exactly one scan unit with exactly one link;
* the scan graph is acyclic and every chain starts at a circuit input
  or a scan-in pin;
* no source bit feeds two scan links (controllability);
* applied HSCAN preserves functional behaviour when scan_en = 0;
* every version justifies every output slice and propagates every
  input; costs are non-decreasing along the ladder.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dft import apply_hscan, insert_hscan
from repro.elaborate import elaborate
from repro.gates import SequentialSimulator
from repro.rtl.interp import RTLInterpreter
from repro.transparency import generate_versions
from repro.util import int_to_bits

from tests.test_crosscheck import random_circuit


class TestHscanInvariants:
    @given(seed=st.integers(0, 300))
    @settings(max_examples=30, deadline=None)
    def test_every_register_bit_linked_once(self, seed):
        circuit = random_circuit(seed)
        plan = insert_hscan(circuit)
        for register in circuit.registers:
            covered = 0
            for link in plan.links:
                if link.dest.comp == register.name:
                    covered |= ((1 << link.dest.width) - 1) << link.dest.lo
            assert covered == (1 << register.width) - 1, register.name

    @given(seed=st.integers(0, 300))
    @settings(max_examples=30, deadline=None)
    def test_source_bits_never_shared(self, seed):
        circuit = random_circuit(seed)
        plan = insert_hscan(circuit)
        occupancy = {}
        for link in plan.links:
            mask = ((1 << link.source.width) - 1) << link.source.lo
            taken = occupancy.get(link.source.comp, 0)
            assert taken & mask == 0, f"{link.source.comp} double-booked"
            occupancy[link.source.comp] = taken | mask

    @given(seed=st.integers(0, 300))
    @settings(max_examples=30, deadline=None)
    def test_depths_positive_and_bounded(self, seed):
        circuit = random_circuit(seed)
        plan = insert_hscan(circuit)
        assert 1 <= plan.depth <= len(plan.units)

    @given(seed=st.integers(0, 150))
    @settings(max_examples=12, deadline=None)
    def test_functional_mode_preserved(self, seed):
        """With scan_en = 0, the scanned circuit behaves like the original."""
        circuit = random_circuit(seed)
        modified, plan = apply_hscan(circuit)
        reference = RTLInterpreter(circuit)
        elab = elaborate(modified)
        sim = SequentialSimulator(elab.netlist)
        rng = random.Random(seed)
        for _ in range(5):
            stimulus = {
                port.name: rng.getrandbits(port.width) for port in circuit.inputs
            }
            expected = reference.step(stimulus)
            words = {"scan_en.0": 0}
            if plan.scan_in_width:
                for i in range(plan.scan_in_width):
                    words[f"scan_in.{i}"] = 0
            for port in circuit.inputs:
                for i, bit in enumerate(int_to_bits(stimulus[port.name], port.width)):
                    words[f"{port.name}.{i}"] = bit
            raw = sim.step(words)
            for port in circuit.outputs:
                value = sum(
                    (raw[f"{port.name}.{i}"] & 1) << i for i in range(port.width)
                )
                assert value == expected[port.name], port.name


class TestVersionInvariants:
    @given(seed=st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_versions_complete_and_monotone(self, seed):
        circuit = random_circuit(seed)
        versions = generate_versions(circuit)
        assert versions, "at least one version must exist"
        cells = [v.extra_cells for v in versions]
        assert cells == sorted(cells)
        for version in versions:
            # every output slice justified, every input propagated
            outputs = {key[0] for key in version.justify_paths}
            assert outputs == {o.name for o in circuit.outputs}
            assert set(version.propagate_paths) == {i.name for i in circuit.inputs}
            for path in version.justify_paths.values():
                assert path.latency >= 0
            for path in version.propagate_paths.values():
                assert path.latency >= 0

    @given(seed=st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_later_versions_never_slower(self, seed):
        circuit = random_circuit(seed)
        versions = generate_versions(circuit)
        if len(versions) < 2:
            return
        first, last = versions[0], versions[-1]
        for key, path in first.justify_paths.items():
            if key in last.justify_paths:
                assert last.justify_paths[key].latency <= path.latency
        for port, path in first.propagate_paths.items():
            assert last.propagate_paths[port].latency <= path.latency
