"""Tests for the AST-based determinism lint (repro.lint.codestyle)."""

import os

from repro.lint.codestyle import check_file, check_source, iter_python_files, main

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def codes(issues):
    return [issue.code for issue in issues]


class TestDet001UnseededRandom:
    def test_module_level_call_flagged(self):
        issues = check_source("import random\nx = random.randint(0, 9)\n")
        assert codes(issues) == ["DET001"]

    def test_from_import_flagged(self):
        issues = check_source("from random import shuffle\n")
        assert codes(issues) == ["DET001"]

    def test_seeded_rng_allowed(self):
        src = "import random\nr = random.Random(7)\nx = r.randint(0, 9)\n"
        assert check_source(src) == []

    def test_aliased_import_tracked(self):
        issues = check_source("import random as rnd\nx = rnd.random()\n")
        assert codes(issues) == ["DET001"]


class TestDet002WallClock:
    def test_time_in_planner_scope_flagged(self):
        src = "import time\nt = time.time()\n"
        issues = check_source(src, "src/repro/soc/plan.py")
        assert codes(issues) == ["DET002"]

    def test_datetime_now_flagged(self):
        src = "from datetime import datetime\nd = datetime.now()\n"
        issues = check_source(src, "src/repro/exec/pool.py")
        assert codes(issues) == ["DET002"]

    def test_obs_layer_exempt(self):
        src = "import time\nt = time.time()\n"
        assert check_source(src, "src/repro/obs/tracer.py") == []

    def test_monotonic_allowed_everywhere(self):
        src = "import time\nt = time.perf_counter()\n"
        assert check_source(src, "src/repro/schedule/packers.py") == []


class TestDet003SetIteration:
    def test_for_over_set_literal_flagged(self):
        issues = check_source("for x in {1, 2}:\n    pass\n")
        assert codes(issues) == ["DET003"]

    def test_comprehension_over_set_call_flagged(self):
        issues = check_source("y = [x for x in set([1, 2])]\n")
        assert codes(issues) == ["DET003"]

    def test_sorted_set_allowed(self):
        assert check_source("for x in sorted({1, 2}):\n    pass\n") == []

    def test_for_over_list_allowed(self):
        assert check_source("for x in [1, 2]:\n    pass\n") == []


class TestDet004ItemsIteration:
    def test_items_in_analysis_scope_flagged(self):
        src = "for k, v in d.items():\n    pass\n"
        issues = check_source(src, "src/repro/analysis/certify.py")
        assert codes(issues) == ["DET004"]

    def test_keys_and_values_flagged_too(self):
        src = "a = [k for k in d.keys()]\nb = [v for v in d.values()]\n"
        issues = check_source(src, "src/repro/analysis/provenance.py")
        assert codes(issues) == ["DET004", "DET004"]

    def test_sorted_items_allowed(self):
        src = "for k, v in sorted(d.items()):\n    pass\n"
        assert check_source(src, "src/repro/analysis/certify.py") == []

    def test_outside_analysis_scope_allowed(self):
        src = "for k, v in d.items():\n    pass\n"
        assert check_source(src, "src/repro/soc/plan.py") == []


class TestRunner:
    def test_syntax_error_reported_not_raised(self):
        issues = check_source("def broken(:\n")
        assert codes(issues) == ["DET000"]

    def test_src_tree_is_clean(self):
        for path in iter_python_files([SRC]):
            assert check_file(path) == [], f"determinism lint failed on {path}"

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main([str(clean)]) == 0
        bad = tmp_path / "repro" / "flow" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nt = time.time()\n")
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "DET002" in out and "bad.py" in out

    def test_issue_format_is_parseable(self):
        issue = check_source("from random import random\n", "a/b.py")[0]
        path, line, col, rest = str(issue).split(":", 3)
        assert (path, int(line), int(col)) == ("a/b.py", 1, 0)
        assert rest.strip().startswith("DET001")
