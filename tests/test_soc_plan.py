"""Tests for SOC construction, the CCG, test planning, and the optimizer."""

import pytest

from repro.errors import SocError
from repro.rtl import CircuitBuilder
from repro.soc import Core, PortRef, Soc, build_ccg, design_space, plan_soc_test
from repro.soc.ccg import shortest_justification
from repro.soc.optimizer import SocetOptimizer


def passthrough_core(name, width=8, depth=1):
    """A core that pipes IN through ``depth`` registers to OUT."""
    b = CircuitBuilder(name)
    din = b.input("IN", width)
    previous = din
    for i in range(depth):
        reg = b.register(f"R{i}", width)
        b.drive(reg, previous)
        previous = reg
    b.output("OUT", previous)
    return b.build()


def sink_core(name, width=8):
    """A core whose output is NOT wired anywhere downstream (needs a mux)."""
    b = CircuitBuilder(name)
    din = b.input("IN", width)
    r = b.register("R0", width)
    b.drive(r, din)
    b.output("OUT", r)
    b.output("AUX", r)
    return b.build()


def two_core_soc():
    """PI -> A(depth 2) -> B(depth 1) -> PO."""
    soc = Soc("duo")
    a = Core.from_circuit(passthrough_core("A", depth=2), test_vectors=10)
    b = Core.from_circuit(passthrough_core("B", depth=1), test_vectors=10)
    soc.add_core(a)
    soc.add_core(b)
    soc.add_input("PIN", 8)
    soc.add_output("POUT", 8)
    soc.wire(None, "PIN", "A", "IN")
    soc.wire("A", "OUT", "B", "IN")
    soc.wire("B", "OUT", None, "POUT")
    return soc


class TestSocModel:
    def test_validate_passes_for_complete_wiring(self):
        two_core_soc().validate()

    def test_partial_input_rejected(self):
        soc = Soc("bad")
        a = Core.from_circuit(passthrough_core("A"), test_vectors=1)
        soc.add_core(a)
        soc.add_input("PIN", 4)
        soc.add_output("POUT", 8)
        soc.connect(PortRef(None, "PIN", 0, 4), PortRef("A", "IN", 0, 4))
        soc.wire("A", "OUT", None, "POUT")
        with pytest.raises(SocError, match="bits driven"):
            soc.validate()

    def test_width_mismatch_rejected(self):
        soc = Soc("bad2")
        a = Core.from_circuit(passthrough_core("A"), test_vectors=1)
        soc.add_core(a)
        soc.add_input("PIN", 4)
        with pytest.raises(SocError, match="width"):
            soc.connect(PortRef(None, "PIN", 0, 4), PortRef("A", "IN", 0, 8))

    def test_core_scan_properties(self):
        core = Core.from_circuit(passthrough_core("A", depth=2), test_vectors=10)
        assert core.scan_depth == 2
        assert core.hscan_vectors == 10 * 3
        assert core.version_count >= 1


class TestCcg:
    def test_nodes_and_edges(self):
        ccg = build_ccg(two_core_soc())
        assert ("PI", "PIN") in ccg.nodes
        assert ("PO", "POUT") in ccg.nodes
        kinds = {d["kind"] for _, _, d in ccg.edges(data=True)}
        assert kinds == {"transparency", "wire"}

    def test_shortest_justification(self):
        soc = two_core_soc()
        ccg = build_ccg(soc)
        target = ("CO", "B", "OUT", 0, 8)
        result = shortest_justification(ccg, target)
        assert result is not None
        cost, path = result
        # A traverses 2 registers, B one: PIN ->0 A.IN ->2 A.OUT ->0 B.IN ->1 B.OUT
        assert cost == 3
        assert path[0] == ("PI", "PIN")


class TestPlanning:
    def test_plan_basic_properties(self):
        plan = plan_soc_test(two_core_soc())
        assert set(plan.core_plans) == {"A", "B"}
        assert plan.total_tat == sum(p.tat for p in plan.core_plans.values())
        assert plan.chip_dft_cells > 0

    def test_core_a_tested_through_pins(self):
        plan = plan_soc_test(two_core_soc())
        plan_a = plan.core_plans["A"]
        # A's input is at the chip pins: cadence 1
        assert all(d.latency == 0 for d in plan_a.deliveries)
        # A's output is observed through B (1 cycle)
        assert plan_a.observations[0].latency == 1
        assert plan_a.cadence == 1
        assert plan_a.tat == plan_a.scan_steps + plan_a.flush

    def test_core_b_justified_through_a(self):
        plan = plan_soc_test(two_core_soc())
        plan_b = plan.core_plans["B"]
        delivery = plan_b.deliveries[0]
        assert delivery.latency == 2  # through A's two registers
        assert plan_b.cadence == 2
        assert plan_b.tat == plan_b.scan_steps * 2 + plan_b.flush

    def test_flush_includes_observation_latency(self):
        plan = plan_soc_test(two_core_soc())
        plan_a = plan.core_plans["A"]
        # depth 2 -> 1 cycle shift-out + 1 cycle through B
        assert plan_a.flush == (plan_a.scan_steps and 1) + 1

    def test_unobservable_output_gets_test_mux(self):
        soc = Soc("sinky")
        a = Core.from_circuit(sink_core("S"), test_vectors=4)
        soc.add_core(a)
        soc.add_input("PIN", 8)
        soc.add_output("POUT", 8)
        soc.wire(None, "PIN", "S", "IN")
        soc.wire("S", "OUT", None, "POUT")
        # AUX goes nowhere: planner must add an output test mux
        plan = plan_soc_test(soc)
        assert any(m.kind == "output" and m.port == "AUX" for m in plan.test_muxes)

    def test_disallowing_test_muxes_raises(self):
        soc = Soc("sinky2")
        a = Core.from_circuit(sink_core("S"), test_vectors=4)
        soc.add_core(a)
        soc.add_input("PIN", 8)
        soc.add_output("POUT", 8)
        soc.wire(None, "PIN", "S", "IN")
        soc.wire("S", "OUT", None, "POUT")
        with pytest.raises(SocError):
            plan_soc_test(soc, allow_test_muxes=False)

    def test_forced_mux_shortcuts_delivery(self):
        soc = two_core_soc()
        plan = plan_soc_test(soc, forced_muxes={("B", "IN")})
        plan_b = plan.core_plans["B"]
        assert plan_b.deliveries[0].latency == 0
        assert plan_b.deliveries[0].via_test_mux
        assert any(m.core == "B" and m.port == "IN" for m in plan.test_muxes)


class TestOptimizer:
    def test_design_space_covers_all_combinations(self):
        soc = two_core_soc()
        points = design_space(soc)
        expected = 1
        for core in soc.testable_cores():
            expected *= core.version_count
        assert len(points) == expected
        assert points[0].chip_cells <= points[-1].chip_cells

    def test_minimize_tat_improves_or_holds(self):
        soc = two_core_soc()
        optimizer = SocetOptimizer(soc)
        plan, trajectory = optimizer.minimize_tat(max_chip_cells=10_000)
        assert trajectory[0].tat >= trajectory[-1].tat
        assert plan.total_tat == trajectory[-1].tat

    def test_minimize_tat_respects_budget(self):
        soc = two_core_soc()
        baseline = plan_soc_test(soc).chip_dft_cells
        plan, _ = SocetOptimizer(soc).minimize_tat(max_chip_cells=baseline)
        assert plan.chip_dft_cells <= baseline

    def test_minimize_tat_infeasible_budget(self):
        from repro.errors import InfeasibleConstraintError

        soc = two_core_soc()
        with pytest.raises(InfeasibleConstraintError):
            SocetOptimizer(soc).minimize_tat(max_chip_cells=1)

    def test_minimize_area_meets_tat_budget(self):
        soc = two_core_soc()
        loose_budget = plan_soc_test(soc).total_tat  # already satisfied
        plan, trajectory = SocetOptimizer(soc).minimize_area(loose_budget)
        assert plan.total_tat <= loose_budget
        assert len(trajectory) == 1  # no replacements needed

    def test_minimize_area_tightening(self):
        soc = two_core_soc()
        base = plan_soc_test(soc)
        achievable = min(p.tat for p in design_space(soc))
        assert achievable < base.total_tat
        plan, trajectory = SocetOptimizer(soc).minimize_area(achievable)
        assert plan.total_tat <= achievable
        assert len(trajectory) >= 2

    def test_minimize_area_impossible_raises(self):
        from repro.errors import InfeasibleConstraintError

        soc = two_core_soc()
        with pytest.raises(InfeasibleConstraintError):
            SocetOptimizer(soc).minimize_area(1)
