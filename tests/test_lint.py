"""Tests for the static design-rule checker (repro.lint)."""

import json

import pytest

from tests.fixtures import broken_designs as bd
from repro.cli import main
from repro.errors import LintError
from repro.lint import (
    DEFAULT_REGISTRY,
    Diagnostic,
    LintContext,
    Rule,
    Severity,
    lint_circuit,
    lint_plan,
    lint_schedule,
    lint_soc,
    strict_gate_plan,
    strict_gate_soc,
)
from repro.schedule import schedule_plan
from repro.soc import plan_soc_test

SYSTEMS = ["System1", "System2", "System3", "System4"]


def fired(report):
    return {d.rule for d in report.diagnostics}


# ----------------------------------------------------------------------
# the registered example systems are clean
# ----------------------------------------------------------------------
class TestSystemsClean:
    @pytest.mark.parametrize("system", SYSTEMS)
    def test_system_has_no_errors(self, system):
        from repro.designs import system_builders

        report = lint_soc(system_builders()[system]())
        assert report.errors == []
        assert report.warnings == []
        assert report.rules_run == len(DEFAULT_REGISTRY)

    @pytest.mark.parametrize("system", SYSTEMS)
    def test_cli_lint_exits_zero(self, system, capsys):
        assert main(["lint", system]) == 0
        assert f"{system}:" in capsys.readouterr().out


# ----------------------------------------------------------------------
# every rule fires on its broken fixture
# ----------------------------------------------------------------------
class TestRulesFire:
    @pytest.mark.parametrize("fixture, rule", [
        (bd.comb_loop_circuit, "rtl.comb-loop"),
        (bd.undriven_circuit, "rtl.undriven"),
        (bd.width_mismatch_circuit, "rtl.width-mismatch"),
        (bd.unreachable_register_circuit, "rtl.unreachable-reg"),
    ])
    def test_circuit_rules(self, fixture, rule):
        report = lint_circuit(fixture())
        assert rule in fired(report)

    @pytest.mark.parametrize("fixture, rule", [
        (bd.partially_driven_soc, "soc.input-drivers"),
        (bd.doubly_driven_soc, "soc.input-drivers"),
        (bd.uncovered_input_soc, "trans.input-propagation"),
        (bd.unjustified_output_soc, "trans.output-justification"),
    ])
    def test_soc_rules(self, fixture, rule):
        report = lint_soc(fixture())
        assert rule in fired(report)
        assert report.errors  # these soc-scope fixtures break ERROR rules

    @pytest.mark.parametrize("fixture, rule", [
        (bd.lying_latency_soc, "trans.latency-overrun"),
        (bd.lying_latency_soc, "analysis.slice-provenance"),
        (bd.narrowed_transparency_soc, "analysis.slice-provenance"),
        (bd.mux_conflict_soc, "analysis.mux-conflict"),
    ])
    def test_soc_warning_rules(self, fixture, rule):
        """Proof rules land at WARNING; trans.latency-overrun demoted with them."""
        report = lint_soc(fixture())
        assert rule in fired(report)
        assert rule in {d.rule for d in report.warnings}
        assert report.errors == []

    def test_shared_select_is_advisory_only(self):
        """Different muxes on one select net: realizable, so INFO not refuted."""
        report = lint_soc(bd.shared_select_soc())
        notes = [d for d in report.diagnostics if d.rule == "analysis.select-sharing"]
        assert notes and all(d.severity is Severity.INFO for d in notes)
        assert report.errors == [] and report.warnings == []

    def test_narrowed_diagnostics_name_slices(self):
        """Refutations carry the offending slice ranges, not just port names."""
        report = lint_soc(bd.narrowed_transparency_soc())
        messages = [d.message for d in report.diagnostics
                    if d.rule == "analysis.slice-provenance"]
        assert messages
        assert any("INHI[3:0]" in m and "R0[7:4]" in m for m in messages)

    @pytest.mark.parametrize("fixture, rule", [
        (bd.tampered_cadence_plan, "plan.reservation-overlap"),
        (bd.mux_unrecorded_plan, "plan.mux-unrecorded"),
        (bd.tat_inconsistent_plan, "plan.tat-consistency"),
        (bd.bad_selection_plan, "plan.selection-range"),
    ])
    def test_plan_rules(self, fixture, rule):
        report = lint_plan(fixture())
        assert rule in fired(report)

    @pytest.mark.parametrize("fixture, rule", [
        (bd.double_booked_schedule, "sched.resource-conflict"),
        (bd.over_budget_schedule, "sched.power-budget"),
    ])
    def test_schedule_rules(self, fixture, rule):
        report = lint_schedule(fixture())
        assert rule in fired(report)

    def test_infeasible_rules(self):
        """plan/sched.infeasible translate construction failures."""
        context = LintContext(system="X", plan_error=RuntimeError("no route"))
        report = DEFAULT_REGISTRY.run(context, scopes=("plan",))
        assert "plan.infeasible" in fired(report)
        context = LintContext(system="X", schedule_error=RuntimeError("stuck"))
        report = DEFAULT_REGISTRY.run(context, scopes=("schedule",))
        assert "sched.infeasible" in fired(report)

    def test_mux_usage_advisory_fires_on_system1(self):
        from repro.designs import build_system1

        report = lint_soc(build_system1())
        notes = [d for d in report.diagnostics if d.rule == "plan.mux-usage"]
        assert notes and all(d.severity is Severity.INFO for d in notes)

    def test_broken_circuit_reports_all_problems(self):
        """The lint collects every problem, not just the first."""
        report = lint_circuit(bd.undriven_circuit())
        assert len(report.diagnostics) >= 2  # undriven + unreachable


# ----------------------------------------------------------------------
# registry knobs
# ----------------------------------------------------------------------
class TestRegistry:
    def test_disable_suppresses_rule(self):
        registry = DEFAULT_REGISTRY.clone()
        registry.disable("rtl.comb-loop")
        report = lint_circuit(bd.comb_loop_circuit(), registry=registry)
        assert "rtl.comb-loop" not in fired(report)

    def test_severity_override(self):
        registry = DEFAULT_REGISTRY.clone()
        registry.override_severity("rtl.unreachable-reg", Severity.ERROR)
        report = lint_circuit(bd.unreachable_register_circuit(), registry=registry)
        assert report.errors and report.errors[0].rule == "rtl.unreachable-reg"

    def test_clone_is_independent(self):
        registry = DEFAULT_REGISTRY.clone()
        registry.disable("rtl.comb-loop")
        assert DEFAULT_REGISTRY.is_enabled("rtl.comb-loop")

    def test_rule_ids_are_stable(self):
        """The documented rule set: ids are API, renames are breaking."""
        assert {rule.rule_id for rule in DEFAULT_REGISTRY.rules()} == {
            "rtl.comb-loop", "rtl.undriven", "rtl.width-mismatch",
            "rtl.unreachable-reg", "soc.input-drivers",
            "trans.input-propagation", "trans.output-justification",
            "trans.latency-overrun", "plan.infeasible",
            "plan.reservation-overlap", "plan.mux-unrecorded",
            "plan.tat-consistency", "plan.selection-range", "plan.mux-usage",
            "sched.infeasible", "sched.resource-conflict", "sched.power-budget",
            "analysis.slice-provenance", "analysis.mux-conflict",
            "analysis.select-sharing", "analysis.access-route",
        }


# ----------------------------------------------------------------------
# CLI: JSON output and exit codes
# ----------------------------------------------------------------------
class TestCliLint:
    def test_json_round_trips(self, capsys):
        assert main(["lint", "System1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        assert payload["target"] == "System1"
        assert payload["clean"] is True
        assert set(payload["summary"]) == {"error", "warning", "info"}
        for entry in payload["diagnostics"]:
            assert set(entry) == {"rule", "severity", "location", "message", "hint"}

    def test_rules_listing(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        assert "rtl.comb-loop" in out and "sched.power-budget" in out

    def test_unknown_system_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", "Nope"])
        assert excinfo.value.code == 2
        assert "unknown system" in capsys.readouterr().err

    def test_missing_system_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint"])
        assert excinfo.value.code == 2

    def test_unknown_rule_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", "System1", "--disable", "no.such.rule"])
        assert excinfo.value.code == 2

    def test_bad_fail_on_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", "System1", "--fail-on", "fatal"])
        assert excinfo.value.code == 2

    def test_fail_on_info_exits_1(self):
        # System1 uses test-mux fallbacks, so info advisories exist
        assert main(["lint", "System1", "--fail-on", "info"]) == 1

    def test_disable_flag_reaches_registry(self, capsys):
        assert main(["lint", "System1", "--fail-on", "info",
                     "--disable", "plan.mux-usage",
                     "--disable", "analysis.select-sharing"]) == 0


# ----------------------------------------------------------------------
# strict precondition gates
# ----------------------------------------------------------------------
class TestStrictGates:
    def test_gate_rejects_broken_soc(self):
        with pytest.raises(LintError) as excinfo:
            strict_gate_soc(bd.uncovered_input_soc())
        assert excinfo.value.diagnostics
        assert excinfo.value.diagnostics[0].rule == "trans.input-propagation"

    def test_gate_rejects_broken_plan(self):
        with pytest.raises(LintError):
            strict_gate_plan(bd.tat_inconsistent_plan())

    def test_plan_soc_test_strict_rejects(self):
        with pytest.raises(LintError):
            plan_soc_test(bd.partially_driven_soc(), strict=True)

    @pytest.mark.parametrize("fixture", [
        bd.narrowed_transparency_soc, bd.mux_conflict_soc,
    ])
    def test_strict_gate_runs_certifier(self, fixture):
        """Refuted transparency blocks strict planning even with no ERROR lint."""
        with pytest.raises(LintError) as excinfo:
            plan_soc_test(fixture(), strict=True)
        assert "certifier refuted" in str(excinfo.value)

    def test_strict_gate_allows_shared_select(self):
        """Advisories are not refutations: the plan goes through."""
        plan = plan_soc_test(bd.shared_select_soc(), strict=True)
        assert "A" in plan.core_plans

    def test_schedule_plan_strict_rejects(self):
        with pytest.raises(LintError):
            schedule_plan(bd.tampered_cadence_plan(), strict=True)

    def test_strict_passes_on_good_designs(self):
        from repro.designs import build_system3

        plan = plan_soc_test(build_system3(), strict=True)
        assert plan.schedule(strict=True).makespan > 0

    def test_lint_error_is_repro_error(self):
        from repro.errors import ReproError

        assert issubclass(LintError, ReproError)


# ----------------------------------------------------------------------
# diagnostics plumbing
# ----------------------------------------------------------------------
class TestDiagnostics:
    def test_severity_ordering_and_parse(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO
        assert Severity.parse("warning") is Severity.WARNING
        with pytest.raises(ValueError):
            Severity.parse("fatal")

    def test_report_sorts_errors_first(self):
        report = lint_circuit(bd.undriven_circuit())
        sorted_rules = [d.severity for d in report.sorted()]
        assert sorted_rules == sorted(sorted_rules, reverse=True)

    def test_diagnostic_str_mentions_location(self):
        d = Diagnostic(rule="x.y", severity=Severity.ERROR,
                       location="Sys/core:A", message="boom", hint="fix it")
        assert "Sys/core:A" in str(d) and "boom" in str(d)

    def test_counters_incremented(self):
        from repro.obs import METRICS

        before = METRICS.counters().get("lint.rules.run", 0)
        lint_circuit(bd.comb_loop_circuit())
        after = METRICS.counters().get("lint.rules.run", 0)
        assert after > before

    def test_temporary_rule_registration(self):
        """The registry accepts (and later drops) out-of-tree rules."""
        def always(ctx):
            yield Diagnostic(rule="test.always", severity=Severity.INFO,
                             location=ctx.system, message="hello", hint="")

        registry = DEFAULT_REGISTRY.clone()
        registry.register(Rule("test.always", "circuit", Severity.INFO,
                               "always fires", always))
        report = lint_circuit(bd.unreachable_register_circuit(), registry=registry)
        assert "test.always" in fired(report)
        registry.unregister("test.always")
        assert "test.always" not in registry
