"""Tests for lossless transfer-arc extraction."""

from repro.rtl import CircuitBuilder, OpKind, Slice
from repro.rtl.arcs import arcs_by_dest, arcs_by_source, extract_arcs
from repro.rtl.types import Concat


def build_example():
    """DIN -> R1 (direct); R1/DIN -> R2 (mux); R2+op -> R3 (lossy); R2 -> OUT."""
    b = CircuitBuilder("ex")
    din = b.input("DIN", 8)
    sel = b.input("SEL", 1)
    r1 = b.register("R1", 8)
    r2 = b.register("R2", 8)
    r3 = b.register("R3", 8)
    b.drive(r1, din)
    m = b.mux("M0", [r1, din], select=sel)
    b.drive(r2, m)
    added = b.op("ADD", OpKind.ADD, [r2, r1])
    b.drive(r3, added)
    b.output("OUT", r2)
    return b.build()


class TestExtractArcs:
    def test_direct_arc(self):
        arcs = arcs_by_dest(extract_arcs(build_example()))
        r1_arcs = arcs["R1"]
        assert len(r1_arcs) == 1
        assert r1_arcs[0].is_direct
        assert r1_arcs[0].source == Slice("DIN", 0, 8)

    def test_mux_arcs(self):
        arcs = arcs_by_dest(extract_arcs(build_example()))
        r2_arcs = arcs["R2"]
        assert len(r2_arcs) == 2
        sources = {a.source.comp for a in r2_arcs}
        assert sources == {"R1", "DIN"}
        assert all(a.mux_path == (("M0", i),) for i, a in enumerate(r2_arcs)) or all(
            len(a.mux_path) == 1 for a in r2_arcs
        )

    def test_operator_blocks_arcs(self):
        arcs = arcs_by_dest(extract_arcs(build_example()))
        assert "R3" not in arcs

    def test_output_arc_flagged(self):
        arcs = arcs_by_dest(extract_arcs(build_example()))
        out_arcs = arcs["OUT"]
        assert len(out_arcs) == 1
        assert out_arcs[0].dest_is_output
        assert out_arcs[0].source.comp == "R2"

    def test_concat_split_arcs(self):
        b = CircuitBuilder("split")
        a = b.input("A", 4)
        c = b.input("C", 4)
        r = b.register("R", 8)
        b.drive(r, Concat((a, c)))
        b.output("O", r)
        arcs = arcs_by_dest(extract_arcs(b.build()))["R"]
        assert len(arcs) == 2
        low = next(x for x in arcs if x.dest_lo == 0)
        high = next(x for x in arcs if x.dest_lo == 4)
        assert low.source.comp == "A" and high.source.comp == "C"

    def test_nested_mux_paths(self):
        b = CircuitBuilder("nest")
        a = b.input("A", 4)
        c = b.input("C", 4)
        d = b.input("D", 4)
        s0 = b.input("S0", 1)
        s1 = b.input("S1", 1)
        inner = b.mux("MI", [a, c], select=s0)
        outer = b.mux("MO", [inner, d], select=s1)
        r = b.register("R", 4)
        b.drive(r, outer)
        b.output("O", r)
        arcs = arcs_by_dest(extract_arcs(b.build()))["R"]
        assert len(arcs) == 3
        deep = [x for x in arcs if len(x.mux_path) == 2]
        assert len(deep) == 2  # A and C go through both muxes

    def test_arcs_by_source(self):
        grouped = arcs_by_source(extract_arcs(build_example()))
        assert {a.dest for a in grouped["DIN"]} == {"R1", "R2"}
