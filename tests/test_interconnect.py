"""Tests for interconnect-coverage classification (SOCET vs test bus)."""

import pytest

from repro.designs import build_system1, build_system2
from repro.flow.interconnect import interconnect_report, bus_interconnect_report
from repro.soc import plan_soc_test


@pytest.fixture(scope="module")
def system1_plan():
    return plan_soc_test(build_system1())


class TestInterconnectReport:
    def test_socet_exercises_core_to_core_wires(self, system1_plan):
        report = interconnect_report(system1_plan)
        # the paper's key routes carry test data through functional wires
        assert report.nets["PREPROCESSOR.DB[7:0] -> CPU.Data[7:0]"] == "exercised"
        assert report.nets["CPU.Address[11:0] -> DISPLAY.A[11:0]"] == "exercised"
        assert report.nets["PREPROCESSOR.DB[7:0] -> DISPLAY.D[7:0]"] == "exercised"
        assert report.nets["PREPROCESSOR.Eoc[0] -> CPU.Interrupt[0]"] == "exercised"

    def test_memory_wires_classified_out_of_scope(self, system1_plan):
        report = interconnect_report(system1_plan)
        assert report.nets["PREPROCESSOR.Address[11:0] -> RAM.Address[11:0]"] == "memory"
        assert report.memory_bits > 0

    def test_display_output_wires_exercised(self, system1_plan):
        report = interconnect_report(system1_plan)
        assert report.nets["DISPLAY.PORT1[6:0] -> chip.PORT1[6:0]"] == "exercised"

    def test_high_logic_coverage(self, system1_plan):
        report = interconnect_report(system1_plan)
        assert report.coverage_percent > 80.0

    def test_bit_accounting_consistent(self, system1_plan):
        report = interconnect_report(system1_plan)
        total = sum(net.source.width for net in system1_plan.soc.nets)
        assert (
            report.exercised_bits
            + report.bypassed_bits
            + report.memory_bits
            + report.idle_bits
            == total
        )

    def test_system2_coverage(self):
        plan = plan_soc_test(build_system2())
        report = interconnect_report(plan)
        assert report.nets["GRAPHICS.PX[7:0] -> GCD.Xin[7:0]"] == "exercised"
        assert report.nets["GCD.Result[7:0] -> X25.RX[7:0]"] == "exercised"
        assert report.coverage_percent > 80.0


class TestTestBusComparison:
    def test_test_bus_exercises_nothing(self):
        soc = build_system1()
        report = bus_interconnect_report(soc)
        assert report.exercised_bits == 0
        assert report.coverage_percent == 0.0

    def test_socet_strictly_better(self, system1_plan):
        socet = interconnect_report(system1_plan)
        bus = bus_interconnect_report(system1_plan.soc)
        assert socet.coverage_percent > bus.coverage_percent
