"""Tests for the statistical regression gates (:mod:`repro.obs.regress`)."""

import json

import pytest

from repro.errors import RegressionError
from repro.obs.ledger import RunLedger, make_record
from repro.obs.regress import (
    BenchVerdict,
    GatePolicy,
    bootstrap_ratio_ci,
    compare_counters,
    compare_ledgers,
    compare_records,
    compare_wall,
    env_compatible,
    mann_whitney_p,
    min_reachable_p,
    rank_sum_u,
)

ENV = {"python": "3.12.0", "platform": "linux", "cpus": 8, "repro_jobs": None}
OTHER_ENV = {"python": "3.12.0", "platform": "linux", "cpus": 2, "repro_jobs": None}


def record(bench="b", samples=(1.0,), counters=None, env=ENV):
    return make_record(
        bench,
        list(samples),
        counters=counters if counters is not None else {"c": 1},
        env=env,
        git_sha=None,
        timestamp="2026-08-06T12:00:00Z",
    )


class TestMannWhitney:
    def test_u_statistic_no_overlap(self):
        u, ties = rank_sum_u([10.0, 11.0], [1.0, 2.0, 3.0])
        assert u == 6.0  # every candidate beats every baseline: U = n1*n2
        assert not ties

    def test_u_statistic_with_ties_uses_midranks(self):
        u, ties = rank_sum_u([1.0], [1.0])
        assert ties
        assert u == 0.5

    def test_exact_p_matches_closed_forms(self):
        # all-greater candidate: p = 1 / C(n1+n2, n1)
        p = mann_whitney_p([10.0, 11.0, 12.0], list(map(float, range(9))))
        assert p == pytest.approx(1.0 / 220.0)
        assert p == pytest.approx(min_reachable_p(3, 9))
        # all-smaller candidate: the whole distribution is in the tail
        assert mann_whitney_p([0.1], [1.0, 2.0]) == pytest.approx(1.0)

    def test_exact_p_is_a_valid_distribution(self):
        # P(U >= 0) must be exactly 1 -- the counts sum to C(n1+n2, n1)
        from repro.obs.regress import _exact_u_tail

        assert _exact_u_tail(0, 4, 5) == pytest.approx(1.0)
        assert _exact_u_tail(4 * 5 + 1, 4, 5) == 0.0

    def test_all_identical_samples_are_indistinguishable(self):
        assert mann_whitney_p([5.0] * 4, [5.0] * 6) == pytest.approx(1.0)

    def test_tied_samples_use_normal_approximation(self):
        # a tie forces the normal path; a clearly slower candidate still
        # lands near significance despite the tiny sample (n=4 vs 4)
        p = mann_whitney_p([9.0, 10.0, 10.0, 11.0], [1.0, 2.0, 3.0, 10.0])
        assert 0.0 < p < 0.10

    def test_empty_sides_rejected(self):
        with pytest.raises(RegressionError):
            mann_whitney_p([], [1.0])


class TestBootstrap:
    def test_seeded_and_deterministic(self):
        args = ([2.0, 2.1, 2.2], [1.0, 1.1, 1.2])
        assert bootstrap_ratio_ci(*args) == bootstrap_ratio_ci(*args)

    def test_ci_brackets_the_true_ratio(self):
        low, high = bootstrap_ratio_ci(
            [2.0, 2.05, 2.1, 1.95], [1.0, 1.05, 0.95, 1.02]
        )
        assert low <= 2.0 <= high
        assert low > 1.5  # clearly separated distributions

    def test_empty_rejected(self):
        with pytest.raises(RegressionError):
            bootstrap_ratio_ci([], [1.0])


class TestWallGate:
    def test_small_ratio_never_flags(self):
        result = compare_wall([1.05], [1.0, 1.0, 1.0], GatePolicy())
        assert not result.tripped
        assert "below min_ratio" in result.note

    def test_clear_slowdown_trips(self):
        baseline = [1.0, 1.01, 0.99, 1.02, 0.98]
        result = compare_wall([6.0, 6.1, 5.9], baseline, GatePolicy())
        assert result.tripped
        assert result.p_value <= 0.05
        assert result.ci_low > 1.0

    def test_noise_on_unchanged_run_does_not_trip(self):
        baseline = [1.0, 1.01, 0.99, 1.02, 0.98]
        result = compare_wall([1.0, 1.03, 0.97], baseline, GatePolicy())
        assert not result.tripped

    def test_single_sample_uses_strict_threshold_fallback(self):
        # one candidate sample can never reach p <= 0.05 against 3
        policy = GatePolicy()
        assert min_reachable_p(1, 3) > policy.alpha
        modest = compare_wall([1.5], [1.0, 1.0, 1.0], policy)
        assert not modest.tripped and "fallback" in modest.note
        extreme = compare_wall([2.5], [1.0, 1.0, 1.0], policy)
        assert extreme.tripped

    def test_policy_validates_wall_gate_mode(self):
        with pytest.raises(RegressionError):
            GatePolicy(wall_gate="sometimes")


class TestCounterGate:
    def test_exact_match_passes(self):
        assert compare_counters({"a": 1, "z": 0}, {"a": 1, "z": 0}) == []

    def test_changed_added_removed_and_zero_vs_absent(self):
        drifts = compare_counters(
            {"a.b": 6, "new": 1}, {"a.b": 5, "gone": 2, "z": 0}
        )
        described = [d.describe() for d in drifts]
        assert described == [
            "a.b: 5 -> 6",
            "gone: 2 -> absent",
            "new: absent -> 1",
            "z: 0 -> absent",  # zero and absent are different facts
        ]

    def test_ignore_prefixes(self):
        drifts = compare_counters(
            {"exec.pool.fallbacks": 1, "real": 2},
            {"exec.pool.fallbacks": 0, "real": 2},
            ignore=("exec.pool.",),
        )
        assert drifts == []


class TestEnvCompatibility:
    def test_patch_versions_compatible_minor_not(self):
        assert env_compatible(
            dict(ENV, python="3.12.1"), dict(ENV, python="3.12.9")
        )
        assert not env_compatible(
            dict(ENV, python="3.11.7"), dict(ENV, python="3.12.1")
        )

    def test_cpus_and_jobs_must_match(self):
        assert not env_compatible(ENV, OTHER_ENV)
        assert not env_compatible(ENV, dict(ENV, repro_jobs="4"))


class TestCompareRecords:
    def test_no_baseline_skips(self):
        verdict = compare_records(record(), [])
        assert verdict.skipped and verdict.status == "skipped"
        assert not verdict.failed

    def test_counter_drift_fails_even_with_identical_timing(self):
        baseline = [record(counters={"a": 1}) for _ in range(3)]
        verdict = compare_records(record(counters={"a": 2}), baseline)
        assert verdict.failed and verdict.status == "drift"
        assert verdict.drifts[0].describe() == "a: 1 -> 2"

    def test_drift_checked_against_newest_baseline_record(self):
        baseline = [record(counters={"a": 1}), record(counters={"a": 2})]
        verdict = compare_records(record(counters={"a": 2}), baseline)
        assert not verdict.drifts

    def test_env_mismatch_downgrades_wall_to_advisory(self):
        baseline = [
            record(samples=[1.0, 1.01, 0.99], env=OTHER_ENV) for _ in range(2)
        ]
        slow = record(samples=[6.0, 6.1, 5.9])
        verdict = compare_records(slow, baseline, GatePolicy())
        assert verdict.wall.tripped and verdict.wall.advisory
        assert verdict.status == "advisory"
        assert not verdict.failed  # advisory never fails the gate
        always = compare_records(slow, baseline, GatePolicy(wall_gate="always"))
        assert always.failed and always.status == "slower"

    def test_wall_gate_off(self):
        baseline = [record(samples=[1.0, 1.0, 1.0]) for _ in range(2)]
        verdict = compare_records(
            record(samples=[9.0]), baseline, GatePolicy(wall_gate="off")
        )
        assert verdict.wall is None and not verdict.failed

    def test_tiny_baseline_not_gated(self):
        verdict = compare_records(
            record(samples=[9.0]), [record(samples=[1.0])], GatePolicy()
        )
        assert not verdict.wall.tripped
        assert "gate not applied" in verdict.wall.note

    def test_to_dict_round_trips_through_json(self):
        baseline = [record(samples=[1.0, 1.0, 1.0]) for _ in range(2)]
        verdict = compare_records(record(samples=[6.0, 6.0, 6.0]), baseline)
        payload = json.loads(json.dumps(verdict.to_dict()))
        assert payload["bench"] == "b"
        assert payload["wall"]["tripped"] is True


class TestCompareLedgers:
    def fill(self, ledger, bench, runs, counters=None, env=ENV):
        for samples in runs:
            ledger.append(record(bench, samples, counters=counters, env=env))

    def test_self_history_three_unchanged_runs_pass(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        self.fill(
            ledger, "b",
            [[1.0, 1.01, 0.99], [1.02, 0.98, 1.0], [0.99, 1.0, 1.01]],
        )
        report = compare_ledgers(ledger)
        assert report.exit_code() == 0
        assert report.verdicts[0].status == "ok"

    def test_injected_slowdown_fails(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        self.fill(ledger, "b", [[1.0, 1.01, 0.99], [1.02, 0.98, 1.0]])
        ledger.append(record("b", [6.0, 6.1, 5.9]))
        report = compare_ledgers(ledger)
        assert report.exit_code() == 1
        assert report.verdicts[0].status == "slower"

    def test_injected_counter_drift_fails(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        self.fill(ledger, "b", [[1.0]] * 3, counters={"a": 1, "z": 0})
        ledger.append(record("b", [1.0], counters={"a": 1}))
        report = compare_ledgers(ledger)
        assert report.exit_code() == 1
        (drift,) = report.verdicts[0].drifts
        assert drift.describe() == "z: 0 -> absent"

    def test_separate_baseline_ledger(self, tmp_path):
        baseline = RunLedger(tmp_path / "baseline.jsonl")
        self.fill(baseline, "b", [[1.0, 1.0, 1.0]] * 2)
        candidate = RunLedger(tmp_path / "fresh.jsonl")
        candidate.append(record("b", [1.0, 1.0, 1.0]))
        report = compare_ledgers(candidate, baseline)
        assert report.exit_code() == 0
        assert report.baseline_path == baseline.path

    def test_single_record_series_skips_and_exit_3(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.append(record("only"))
        report = compare_ledgers(ledger)
        assert report.compared == 0
        assert report.exit_code() == 3

    def test_unknown_series_rejected(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.append(record("b"))
        with pytest.raises(RegressionError, match="missing"):
            compare_ledgers(ledger, benches=["missing"])

    def test_render_mentions_each_series(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        self.fill(ledger, "b", [[1.0, 1.0, 1.0]] * 2)
        report = compare_ledgers(ledger)
        text = report.render()
        assert "b" in text and "series compared" in text


class TestCliRegress:
    def seed_ledger(self, path, runs, counters=None):
        ledger = RunLedger(path)
        for samples in runs:
            ledger.append(record("b", samples, counters=counters))
        return ledger

    def test_unchanged_runs_exit_zero(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "ledger.jsonl"
        self.seed_ledger(path, [[1.0, 1.01, 0.99]] * 3)
        assert main(["regress", "--ledger", str(path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_slowdown_exits_one_and_json_reports_it(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "ledger.jsonl"
        self.seed_ledger(path, [[1.0, 1.01, 0.99], [1.02, 0.98, 1.0]])
        RunLedger(path).append(record("b", [6.0, 6.1, 5.9]))
        assert main(["regress", "--ledger", str(path), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] is True
        assert payload["verdicts"][0]["status"] == "slower"

    def test_counter_drift_exits_one(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "ledger.jsonl"
        self.seed_ledger(path, [[1.0]] * 3, counters={"a": 5})
        RunLedger(path).append(record("b", [1.0], counters={"a": 6}))
        assert main(["regress", "--ledger", str(path)]) == 1
        assert "5 -> 6" in capsys.readouterr().out

    def test_missing_ledger_is_usage_error(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["regress", "--ledger", str(tmp_path / "none.jsonl")])
        assert exc.value.code == 2

    def test_unknown_series_is_usage_error(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "ledger.jsonl"
        self.seed_ledger(path, [[1.0]])
        with pytest.raises(SystemExit) as exc:
            main(["regress", "nope", "--ledger", str(path)])
        assert exc.value.code == 2

    def test_nothing_comparable_exits_three(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "ledger.jsonl"
        self.seed_ledger(path, [[1.0]])
        assert main(["regress", "--ledger", str(path)]) == 3

    def test_no_counter_gate_flag(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "ledger.jsonl"
        self.seed_ledger(path, [[1.0]] * 3, counters={"a": 5})
        RunLedger(path).append(record("b", [1.0], counters={"a": 6}))
        assert main(
            ["regress", "--ledger", str(path), "--no-counter-gate"]
        ) == 0

    def test_ignore_counter_flag(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "ledger.jsonl"
        self.seed_ledger(path, [[1.0]] * 3, counters={"noisy.x": 5})
        RunLedger(path).append(record("b", [1.0], counters={"noisy.x": 6}))
        assert main(
            ["regress", "--ledger", str(path), "--ignore-counter", "noisy."]
        ) == 0


def test_verdict_status_priorities():
    verdict = BenchVerdict(bench="b")
    assert verdict.status == "ok" and not verdict.failed


# ----------------------------------------------------------------------
# histogram-percentile SLO gate (ledger v3 'histograms')
# ----------------------------------------------------------------------
def hist_summary(values, name="h"):
    from repro.obs.metrics import MetricsRegistry

    hist = MetricsRegistry().histogram(name)
    for value in values:
        hist.observe(value)
    return hist.summary()


def serve_record(
    scale=1.0,
    count=20,
    env=ENV,
    kind="serve",
    counters=None,
    hist_name="serve.queue_wait",
):
    """A serve-session ledger record whose queue-wait tail scales with
    ``scale`` (1.5 = the '+50% p99' injection of the acceptance test)."""
    values = [0.010 * (i + 1) * scale for i in range(count)]
    return make_record(
        "serve-session",
        [1.0],
        counters=counters if counters is not None else {},
        kind=kind,
        env=env,
        git_sha=None,
        timestamp="2026-08-06T12:00:00Z",
        histograms={hist_name: hist_summary(values)},
    )


class TestHistogramSloGate:
    def test_unchanged_latency_passes(self):
        baseline = [serve_record() for _ in range(3)]
        verdict = compare_records(serve_record(), baseline)
        assert verdict.hist and not verdict.slo_breaches
        assert verdict.status == "ok" and not verdict.failed

    def test_p99_breach_fails(self):
        baseline = [serve_record() for _ in range(3)]
        verdict = compare_records(serve_record(scale=1.6), baseline)
        assert verdict.slo_breaches
        breach = verdict.slo_breaches[0]
        assert breach.name == "serve.queue_wait"
        assert breach.percentile == "p99" and breach.ratio == pytest.approx(1.6)
        assert "serve.queue_wait p99" in breach.describe()
        assert verdict.failed and verdict.status == "slo"

    def test_below_min_ratio_not_tripped(self):
        baseline = [serve_record() for _ in range(3)]
        verdict = compare_records(serve_record(scale=1.3), baseline)
        assert verdict.hist and not verdict.hist[0].tripped
        assert not verdict.failed

    def test_min_count_guard_never_trips(self):
        # a p99 of three samples is the max of three samples: reported,
        # never gated
        baseline = [serve_record() for _ in range(3)]
        verdict = compare_records(serve_record(scale=3.0, count=3), baseline)
        assert verdict.hist and not verdict.hist[0].tripped
        assert "gate not applied" in verdict.hist[0].note
        assert not verdict.failed

    def test_env_mismatch_downgrades_to_advisory(self):
        baseline = [serve_record(env=OTHER_ENV) for _ in range(3)]
        verdict = compare_records(serve_record(scale=2.0), baseline)
        assert verdict.hist[0].tripped and verdict.hist[0].advisory
        assert not verdict.slo_breaches and not verdict.failed
        assert verdict.status == "advisory"

    def test_non_serve_histograms_not_gated(self):
        baseline = [serve_record(hist_name="profile.total.time") for _ in range(3)]
        verdict = compare_records(
            serve_record(scale=5.0, hist_name="profile.total.time"), baseline
        )
        assert verdict.hist == [] and not verdict.failed

    def test_hist_gate_off(self):
        baseline = [serve_record() for _ in range(3)]
        verdict = compare_records(
            serve_record(scale=5.0), baseline, GatePolicy(hist_gate=False)
        )
        assert verdict.hist == [] and not verdict.failed

    def test_policy_validates_percentile(self):
        with pytest.raises(RegressionError):
            GatePolicy(hist_percentile="p95")
        assert GatePolicy(hist_percentile="p90").hist_percentile == "p90"

    def test_serve_kind_skips_exact_counter_gate(self):
        # a serve session's counters sum arbitrary client load; there is
        # no seed-determined expectation to compare exactly
        baseline = [serve_record(counters={"a": 1}) for _ in range(3)]
        verdict = compare_records(serve_record(counters={"a": 99}), baseline)
        assert not verdict.drifts
        bench_kind = compare_records(
            serve_record(counters={"a": 99}, kind="bench"),
            [serve_record(counters={"a": 1}, kind="bench") for _ in range(3)],
        )
        assert bench_kind.drifts

    def test_to_dict_carries_histogram_verdicts(self):
        baseline = [serve_record() for _ in range(3)]
        verdict = compare_records(serve_record(scale=1.6), baseline)
        payload = json.loads(json.dumps(verdict.to_dict()))
        assert payload["histograms"][0]["tripped"] is True
        assert payload["status"] == "slo"

    def test_injected_regression_end_to_end(self, tmp_path):
        """Acceptance: a seeded +50% p99 queue-wait injection fails
        ``repro regress`` against the committed baseline."""
        from repro.cli import main

        baseline_path = tmp_path / "baseline.jsonl"
        candidate_path = tmp_path / "candidate.jsonl"
        baseline = RunLedger(baseline_path)
        for _ in range(3):
            baseline.append(serve_record())
        RunLedger(candidate_path).append(serve_record(scale=1.5))
        report = compare_ledgers(
            RunLedger(candidate_path), RunLedger(baseline_path)
        )
        assert report.exit_code() == 1
        assert report.verdicts[0].status == "slo"
        assert "serve.queue_wait" in report.render()
        assert main([
            "regress", "--ledger", str(candidate_path),
            "--baseline", str(baseline_path),
        ]) == 1
        # and the flag that turns the gate off restores exit 0
        assert main([
            "regress", "--ledger", str(candidate_path),
            "--baseline", str(baseline_path), "--no-hist-gate",
        ]) == 0
