"""Tests for the baselines, flattening, controller, and flow layers."""

import pytest

from repro.baselines import fscan_bscan_report, evaluate_test_bus
from repro.designs import build_display, build_system1, build_system2
from repro.dft.tat import fscan_bscan_core_tat
from repro.flow import flatten_soc, prepare_core, run_socet
from repro.gates import GateKind, SequentialSimulator
from repro.soc import plan_soc_test, synthesize_controller
from repro.soc.controller import clock_enable_trace


@pytest.fixture(scope="module")
def system1():
    return build_system1()


@pytest.fixture(scope="module")
def system2():
    return build_system2()


class TestFscanBscanBaseline:
    def test_display_row_matches_paper_formula(self, system1):
        report = fscan_bscan_report(system1)
        display = next(r for r in report.rows if r.core == "DISPLAY")
        assert display.flip_flops == 66
        assert display.internal_input_bits == 20
        # paper: (66+20) x V + 85 with V = 105 gives 9,115
        assert fscan_bscan_core_tat(66, 20, 105) == 9115
        assert display.tat == 86 * display.vectors + 85

    def test_totals(self, system1):
        report = fscan_bscan_report(system1)
        assert report.total_tat == sum(r.tat for r in report.rows)
        assert report.total_cells == report.fscan_cells + report.bscan_cells
        assert len(report.rows) == 3  # memories excluded

    def test_socet_beats_baseline_on_tat(self, system1):
        baseline = fscan_bscan_report(system1)
        plan = plan_soc_test(system1)
        assert plan.total_tat < baseline.total_tat

    def test_socet_chip_dft_cheaper_than_bscan(self, system1):
        baseline = fscan_bscan_report(system1)
        plan = plan_soc_test(system1)
        assert plan.chip_dft_cells < baseline.bscan_cells


class TestTestBusBaseline:
    def test_minimum_tat(self, system1):
        bus = evaluate_test_bus(system1)
        socet = plan_soc_test(system1)
        # the test bus is the lower bound on test time...
        assert bus.total_tat <= socet.total_tat
        # ...and costs more chip-level DFT than SOCET's minimum-area point
        assert bus.total_cells > socet.chip_dft_cells


class TestFlatten:
    def test_flat_simulates(self, system1):
        flat = flatten_soc(system1)
        sim = SequentialSimulator(flat)
        inputs = {g.name: 0 for g in flat.inputs}
        outputs = sim.step(inputs)
        assert outputs  # chip POs exist and evaluate

    def test_only_chip_pins_are_inputs(self, system1):
        flat = flatten_soc(system1)
        names = {g.name for g in flat.inputs}
        assert names == {f"NUM.{i}" for i in range(8)} | {"Video.0", "Reset.0"}

    def test_chip_outputs_are_display_ports(self, system1):
        flat = flatten_soc(system1)
        outputs = {g.name for g in flat.outputs}
        assert all(name.startswith("PO_PORT") for name in outputs)
        assert len(outputs) == 42

    def test_hscan_scan_access_modes(self, system1):
        full = flatten_soc(system1, with_hscan=True, scan_access="full")
        enable_only = flatten_soc(system1, with_hscan=True, scan_access="enable")
        none = flatten_soc(system1, with_hscan=True, scan_access="none")
        def input_count(n):
            return len(n.inputs)
        assert input_count(full) > input_count(enable_only) > input_count(none)

    def test_bad_scan_access_rejected(self, system1):
        with pytest.raises(Exception):
            flatten_soc(system1, with_hscan=True, scan_access="bogus")


class TestController:
    def test_signals_and_area(self, system1):
        plan = plan_soc_test(system1)
        controller = synthesize_controller(plan)
        purposes = {s.purpose for s in controller.signals}
        assert "clock-gate" in purposes and "scan-enable" in purposes
        assert controller.area > 0
        assert plan.controller_cells == controller.area

    def test_clock_enable_trace_length(self, system1):
        plan = plan_soc_test(system1)
        core_plan = plan.core_plans["DISPLAY"]
        trace = list(clock_enable_trace(core_plan))
        assert len(trace) == core_plan.tat
        # exactly one scan-clock pulse per cadence during the scan phase
        scan_part = trace[: core_plan.scan_steps * core_plan.cadence]
        assert sum(scan_part) == core_plan.scan_steps


class TestCoreLevelFlow:
    def test_prepare_core_products(self):
        prep = prepare_core(build_display())
        assert prep.vector_count > 0
        assert prep.atpg.report.fault_coverage > 90.0
        assert prep.functional_area > 0
        table = prep.version_latency_table()
        assert table[0]["version"] == "Version 1"
        assert any(k.startswith("propagate") for k in table[0])


class TestChipLevelFlow:
    def test_run_socet_points_and_rows(self, system2):
        run = run_socet(system2)
        assert run.min_area_point.chip_cells <= run.min_tat_point.chip_cells
        assert run.min_tat_point.tat <= run.min_area_point.tat
        rows = run.area_rows()
        assert len(rows) == 2
        assert rows[0].socet_total_percent < rows[0].fscan_bscan_total_percent

    def test_min_tat_point_beats_baseline(self, system2):
        run = run_socet(system2)
        assert run.min_tat_plan.total_tat < run.baseline.total_tat
