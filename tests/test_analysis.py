"""Tests for the symbolic transparency certifier (repro.analysis)."""

import dataclasses
import json

import pytest

from tests.fixtures import broken_designs as bd
from repro.analysis import (
    certify_soc,
    certify_version,
    check_path_selects,
    fresh_known_arcs,
    prove_path,
    strict_gate_access,
)
from repro.analysis.schema import validate_certificate
from repro.cli import main
from repro.errors import LintError
from repro.lint import Severity

SYSTEMS = ["System1", "System2", "System3", "System4"]


def build(system):
    from repro.designs import system_builders

    return system_builders()[system]()


def refuted_paths(certificate):
    return [p for p in certificate.iter_paths() if not p.proved]


# ----------------------------------------------------------------------
# slice-provenance prover
# ----------------------------------------------------------------------
class TestProvenance:
    def one_core(self, soc_builder=bd.shared_select_soc, name="A"):
        return soc_builder().cores[name]

    def test_honest_path_proves_full_width(self):
        core = self.one_core()
        version = core.versions[0]
        key = sorted(version.justify_paths)[0]
        path = version.justify_paths[key]
        proof = prove_path(core.circuit, path)
        assert proof.proved
        assert proof.proved_width == proof.root.width
        assert proof.reasons == []
        assert sum(s.width for s in proof.segments) == proof.root.width

    def test_derived_latency_matches_declaration(self):
        core = self.one_core()
        version = core.versions[0]
        for path in version.propagate_paths.values():
            proof = prove_path(core.circuit, path)
            assert proof.derived_latency == path.latency

    def test_lying_latency_is_refuted(self):
        soc = bd.lying_latency_soc()
        core = soc.cores["A"]
        path = core.versions[0].propagate_paths["IN"]
        proof = prove_path(core.circuit, path)
        assert not proof.proved
        assert any("latency" in reason for reason in proof.reasons)

    def test_unknown_arc_is_refuted_with_slices(self):
        soc = bd.narrowed_transparency_soc()
        core = soc.cores["A"]
        version = core.versions[0]
        known = fresh_known_arcs(core.circuit, version, core.hscan)
        path = version.propagate_paths["INHI"]
        proof = prove_path(core.circuit, path, known_arcs=known)
        assert not proof.proved
        assert any("INHI[3:0]" in r and "R0[7:4]" in r for r in proof.reasons)

    def test_segments_are_sorted_and_stable(self):
        core = self.one_core(bd.narrowed_transparency_soc)
        version = core.versions[0]
        key = sorted(version.justify_paths)[0]
        proof = prove_path(core.circuit, version.justify_paths[key])
        ordering = [(s.root_lo, s.width, s.terminal) for s in proof.segments]
        assert ordering == sorted(ordering)


# ----------------------------------------------------------------------
# mux-select consistency solver
# ----------------------------------------------------------------------
class TestMuxSat:
    def test_conflicting_path_is_refuted(self):
        core = bd.mux_conflict_soc().cores["A"]
        version = core.versions[0]
        key = sorted(version.justify_paths)[0]
        solver = check_path_selects(core.circuit, version.justify_paths[key])
        assert not solver.consistent
        assert solver.conflicts
        described = solver.conflicts[0].describe()
        assert "MX" in described and "0" in described and "1" in described

    def test_shared_select_is_advisory_not_conflict(self):
        core = bd.shared_select_soc().cores["A"]
        version = core.versions[0]
        key = sorted(version.justify_paths)[0]
        solver = check_path_selects(core.circuit, version.justify_paths[key])
        assert solver.consistent
        assert solver.advisories
        assert "SEL" in solver.advisories[0]


# ----------------------------------------------------------------------
# certificates over the example systems
# ----------------------------------------------------------------------
class TestSystemsCertify:
    @pytest.mark.parametrize("system", SYSTEMS)
    def test_every_version_certifies(self, system):
        certificate = certify_soc(build(system))
        assert certificate.certified
        summary = certificate.summary()
        assert summary["refuted"] == 0
        assert summary["routes_refuted"] == 0
        assert summary["paths"] > 0 and summary["routes"] > 0
        assert certificate.plan_error is None

    @pytest.mark.parametrize("system", SYSTEMS)
    def test_json_is_byte_stable(self, system):
        first = certify_soc(build(system)).to_json()
        second = certify_soc(build(system)).to_json()
        assert first == second

    @pytest.mark.parametrize("system", SYSTEMS)
    def test_json_passes_schema_validation(self, system):
        payload = json.loads(certify_soc(build(system)).to_json())
        assert validate_certificate(payload) == []


# ----------------------------------------------------------------------
# refutations on the broken fixtures
# ----------------------------------------------------------------------
class TestRefutations:
    def test_narrowed_core_is_refuted(self):
        certificate = certify_soc(bd.narrowed_transparency_soc())
        assert not certificate.certified
        bad = refuted_paths(certificate)
        assert bad
        # the diagnostics carry the exact offending slice ranges
        assert any(
            "INHI[3:0]" in problem and "R0[7:4]" in problem
            for proof in bad for problem in proof.problems()
        )

    def test_mux_conflict_is_refuted(self):
        certificate = certify_soc(bd.mux_conflict_soc())
        bad = refuted_paths(certificate)
        assert bad
        assert any(proof.solver.conflicts for proof in bad)
        # version 2 retries with bypass muxes and must still be on offer
        assert any(v.proved for v in certificate.versions)

    def test_refuted_certificate_json_still_validates(self):
        payload = json.loads(certify_soc(bd.narrowed_transparency_soc()).to_json())
        assert validate_certificate(payload) == []
        assert payload["certified"] is False
        assert payload["summary"]["refuted"] > 0

    def test_escalation_only_hits_selected_versions(self):
        certificate = certify_soc(bd.mux_conflict_soc())
        escalated = certificate.diagnostics(escalate=True)
        errors = [d for d in escalated if d.severity is Severity.ERROR]
        assert errors  # version 0 is the selected default
        relaxed = certificate.diagnostics()
        assert all(d.severity < Severity.ERROR for d in relaxed)


# ----------------------------------------------------------------------
# the proof-backed strict gate
# ----------------------------------------------------------------------
class TestStrictGateAccess:
    def test_refuses_narrowed_core(self):
        with pytest.raises(LintError) as excinfo:
            strict_gate_access(bd.narrowed_transparency_soc())
        assert "certifier refuted" in str(excinfo.value)
        assert "A" in str(excinfo.value)

    def test_selection_can_dodge_the_refutation(self):
        # the conflict only poisons version 1; version 2 uses bypass muxes
        soc = bd.mux_conflict_soc()
        core = soc.cores["A"]
        proved = [
            v.index for v in (
                certify_version(core.circuit, v, core_name="A", hscan=core.hscan)
                for v in core.versions
            ) if v.proved
        ]
        assert proved
        strict_gate_access(soc, selection={"A": proved[0]})

    def test_passes_on_clean_systems(self):
        strict_gate_access(build("System1"))


# ----------------------------------------------------------------------
# tamper detection: the certifier must not trust version metadata
# ----------------------------------------------------------------------
class TestFreshArcs:
    def test_fresh_arcs_match_declared_on_honest_core(self):
        core = bd.shared_select_soc().cores["A"]
        for version in core.versions:
            fresh = set(fresh_known_arcs(core.circuit, version, core.hscan))
            declared = {arc.key() for arc in version.rcg.arcs}
            assert declared <= fresh

    def test_trusting_declared_rcg_misses_the_tamper(self):
        """Without fresh extraction the narrowed core would wrongly prove."""
        core = bd.narrowed_transparency_soc().cores["A"]
        version = core.versions[0]
        trusting = certify_version(core.circuit, version, core_name="A")
        fresh = certify_version(
            core.circuit, version, core_name="A", hscan=core.hscan
        )
        assert trusting.proved  # the lie the declared RCG tells
        assert not fresh.proved  # the netlist does not back it


# ----------------------------------------------------------------------
# CLI: repro certify
# ----------------------------------------------------------------------
class TestCliCertify:
    def test_clean_system_exits_zero(self, capsys):
        assert main(["certify", "System1"]) == 0
        out = capsys.readouterr().out
        assert "System1" in out

    def test_json_output_validates(self, capsys):
        assert main(["certify", "System2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate_certificate(payload) == []
        assert payload["system"] == "System2"

    def test_fail_on_info_sees_advisories(self):
        # System1's CPU paths drive shared select nets: INFO advisories
        assert main(["certify", "System1", "--fail-on", "info"]) == 1

    def test_unknown_system_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["certify", "Nope"])
        assert excinfo.value.code == 2

    def test_bad_fail_on_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["certify", "System1", "--fail-on", "fatal"])
        assert excinfo.value.code == 2

    def test_output_file_written(self, tmp_path, capsys):
        target = tmp_path / "cert.json"
        assert main(["certify", "System2", "--json", "-o", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert validate_certificate(payload) == []

    def test_replay_embeds_results(self, capsys):
        assert main(["certify", "System2", "--json", "--replay"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["replays"]
        assert all(entry["ok"] for entry in payload["replays"])


# ----------------------------------------------------------------------
# schema validator rejects malformed artifacts
# ----------------------------------------------------------------------
class TestSchemaValidator:
    def good(self):
        return json.loads(certify_soc(bd.shared_select_soc()).to_json())

    def test_missing_key_reported(self):
        payload = self.good()
        del payload["summary"]
        assert validate_certificate(payload)

    def test_wrong_kind_reported(self):
        payload = self.good()
        payload["kind"] = "something-else"
        assert any("kind" in problem for problem in validate_certificate(payload))

    def test_inconsistent_status_reported(self):
        payload = self.good()
        victim = payload["versions"][0]["paths"][0]
        victim["status"] = "refuted"
        victim["problems"] = []
        assert validate_certificate(payload)

    def test_summary_cross_check(self):
        payload = self.good()
        payload["summary"]["paths"] += 1
        assert any("summary" in problem for problem in validate_certificate(payload))
