"""Tests for the command-line interface and JSON export."""

import json

import pytest

from repro.cli import main
from repro.designs import build_system1
from repro.flow.export import plan_to_dict, version_to_dict
from repro.soc import plan_soc_test


class TestCli:
    def test_cores_lists_examples(self, capsys):
        assert main(["cores"]) == 0
        out = capsys.readouterr().out
        for name in ("CPU", "PREPROCESSOR", "DISPLAY", "GCD", "RAM"):
            assert name in out

    def test_versions_table(self, capsys):
        assert main(["versions", "X25"]) == 0
        out = capsys.readouterr().out
        assert "Version 1" in out and "ATPG" in out

    def test_versions_unknown_core(self):
        with pytest.raises(SystemExit):
            main(["versions", "NOPE"])

    def test_plan_default(self, capsys):
        assert main(["plan", "System2"]) == 0
        out = capsys.readouterr().out
        assert "total TAT" in out
        assert "chip-level DFT" in out

    def test_plan_with_selection(self, capsys):
        assert main(["plan", "System1", "-s", "CPU=3"]) == 0
        out = capsys.readouterr().out
        assert "CPU" in out

    def test_plan_rejects_bad_selection(self):
        with pytest.raises(SystemExit):
            main(["plan", "System1", "-s", "CPU=9"])
        with pytest.raises(SystemExit):
            main(["plan", "System1", "-s", "NOPE=1"])
        with pytest.raises(SystemExit):
            main(["plan", "System1", "-s", "garbage"])

    def test_unknown_system(self):
        with pytest.raises(SystemExit):
            main(["plan", "System9"])

    def test_sweep(self, capsys):
        assert main(["sweep", "System2"]) == 0
        out = capsys.readouterr().out
        assert "design space" in out and "min-TAT" in out

    def test_compare(self, capsys):
        assert main(["compare", "System2"]) == 0
        out = capsys.readouterr().out
        assert "FSCAN-BSCAN" in out and "faster" in out

    def test_export_stdout_is_valid_json(self, capsys):
        assert main(["export", "System2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["soc"] == "System2"

    def test_export_to_file(self, tmp_path, capsys):
        target = tmp_path / "plan.json"
        assert main(["export", "System2", "-o", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["total_tat"] > 0


class TestExport:
    @pytest.fixture(scope="class")
    def plan(self):
        return plan_soc_test(build_system1())

    def test_plan_dict_shape(self, plan):
        payload = plan_to_dict(plan)
        assert payload["soc"] == "System1"
        assert payload["total_tat"] == plan.total_tat
        assert {c["core"] for c in payload["cores"]} == {"CPU", "PREPROCESSOR", "DISPLAY"}
        for core in payload["cores"]:
            assert core["tat"] == core["scan_steps"] * core["cadence"] + core["flush"]

    def test_plan_dict_json_round_trip(self, plan):
        payload = plan_to_dict(plan)
        assert json.loads(json.dumps(payload)) == payload

    def test_version_dict(self, plan):
        cpu = plan.soc.cores["CPU"]
        payload = version_to_dict(cpu.version(0))
        assert payload["justify"]["Address[0+8]"] == 6
        assert payload["propagate"]["Data"] == 6
        assert "DR" in payload["freezes"]  # the Figure 4(b)-style balance freeze
