"""Trace stitching under concurrency: threads + pool workers, one tree.

The satellite contract: a traced run that fans work over threads *and*
worker processes must export a single coherent Chrome trace -- every
span id unique, every worker span's parent chain terminating inside
the trace (zero orphans), and the JSON loadable by the validator.
"""

import json
import os
import threading

from repro.exec import ParallelExecutor
from repro.obs import METRICS, TRACER, enable_tracing, span_tree_problems
from repro.obs.benchjson import validate_chrome_trace


def _traced_task(item):
    """Pool worker body: two nested spans around trivial work."""
    with TRACER.span("stitch.work", item=item):
        with TRACER.span("stitch.inner"):
            return item * 2


def _by_id(events):
    return {e["args"]["span_id"]: e for e in events if "span_id" in e["args"]}


class TestPoolStitching:
    def setup_method(self):
        enable_tracing()

    def teardown_method(self):
        TRACER.disable()
        TRACER.clear()

    def _run(self, jobs):
        with TRACER.span("stitch.root"):
            with ParallelExecutor(jobs) as executor:
                results = executor.map(_traced_task, [1, 2, 3, 4])
        assert results == [2, 4, 6, 8]  # order preserved
        return TRACER.events()

    def _assert_coherent(self, events):
        assert span_tree_problems(events) == []
        payload = json.loads(json.dumps(TRACER.chrome_trace()))
        validate_chrome_trace(payload)
        assert payload["metadata"]["trace_id"] == TRACER.trace_id
        spans = _by_id(events)
        dispatch = [e for e in events if e["name"] == "exec.pool.dispatch"]
        assert len(dispatch) == 1
        dispatch_id = dispatch[0]["args"]["span_id"]
        assert dispatch[0]["args"]["parent"] == "stitch.root"
        work = [e for e in events if e["name"] == "stitch.work"]
        assert len(work) == 4
        for event in work:
            # every shipped span nests under the dispatching span
            assert event["args"]["parent_id"] == dispatch_id
            assert event["args"]["depth"] == dispatch[0]["args"]["depth"] + 1
        inner = [e for e in events if e["name"] == "stitch.inner"]
        assert len(inner) == 4
        for event in inner:
            parent = spans[event["args"]["parent_id"]]
            assert parent["name"] == "stitch.work"
        return work

    def test_two_workers_stitch_into_one_tree(self):
        before = int(METRICS.counter("exec.pool.spans_shipped").value)
        events = self._run(jobs=2)
        work = self._assert_coherent(events)
        if {e["pid"] for e in work} != {os.getpid()}:
            # real worker processes: their spans were shipped + counted
            shipped = int(METRICS.counter("exec.pool.spans_shipped").value)
            assert shipped - before == 8  # 4x (work + inner)

    def test_serial_fallback_same_tree_shape(self):
        # jobs=None runs in-process; the tree contract is identical
        events = self._run(jobs=None)
        self._assert_coherent(events)
        assert {e["pid"] for e in events} == {os.getpid()}

    def test_disabled_tracing_ships_nothing(self):
        TRACER.disable()
        TRACER.clear()
        before = int(METRICS.counter("exec.pool.spans_shipped").value)
        with ParallelExecutor(2) as executor:
            assert executor.map(_traced_task, [1, 2]) == [2, 4]
        assert TRACER.events() == []
        assert int(METRICS.counter("exec.pool.spans_shipped").value) == before


class TestThreadsPlusWorkers:
    def teardown_method(self):
        TRACER.disable()
        TRACER.clear()

    def test_four_threads_two_workers_one_coherent_trace(self):
        enable_tracing()

        def thread_body(index):
            with TRACER.span("stitch.thread", index=index):
                with TRACER.span("stitch.thread.step"):
                    pass

        threads = [
            threading.Thread(target=thread_body, args=(i,)) for i in range(4)
        ]
        with TRACER.span("stitch.root"):
            for thread in threads:
                thread.start()
            with ParallelExecutor(2) as executor:
                executor.map(_traced_task, [1, 2, 3, 4])
            for thread in threads:
                thread.join()
        TRACER.disable()
        events = TRACER.events()

        assert span_tree_problems(events) == []  # unique ids, zero orphans
        validate_chrome_trace(json.loads(json.dumps(TRACER.chrome_trace())))
        spans = _by_id(events)
        assert len(spans) == len([e for e in events if "span_id" in e["args"]])
        # per-thread nesting survived concurrency: each step's parent is
        # a thread span recorded on the same thread
        for event in events:
            if event["name"] != "stitch.thread.step":
                continue
            parent = spans[event["args"]["parent_id"]]
            assert parent["name"] == "stitch.thread"
            assert parent["tid"] == event["tid"]
        # and the pool workers' spans still chain to the dispatch span
        dispatch_id = next(
            e["args"]["span_id"] for e in events
            if e["name"] == "exec.pool.dispatch"
        )
        for event in events:
            if event["name"] == "stitch.work":
                assert event["args"]["parent_id"] == dispatch_id
