"""Differential tests: compiled numpy kernels vs the scalar oracle.

The scalar simulators are the bit-identity oracle (DESIGN.md,
"Vectorized kernels"): the numpy backend must reproduce not just
coverage numbers but the exact ``detected`` ordering, ``undetected``
survivors, ``first_detection`` pattern indices, and every
``faultsim.*`` counter -- fault dropping makes grading order-sensitive,
so anything less than bit-identity silently changes results downstream.
"""

import random

import pytest

from repro.designs import build_system1, build_system2, build_system3, build_system4
from repro.errors import SimulationError
from repro.faults import FaultSimulator, collapse_faults, full_fault_universe
from repro.faults.simulator import (
    SEQUENCE_PACK_LIMIT,
    clear_cone_caches,
    sequential_fault_grade,
)
from repro.flow.system_netlist import flatten_soc
from repro.gates import CombinationalSimulator, GateKind, GateNetlist
from repro.gates import kernel as gk
from repro.gates.kernel import (
    clear_kernel_caches,
    compiled_program,
    int_to_words,
    numpy_available,
    resolve_backend,
    tail_masks,
    word_count,
    words_to_int,
)
from repro.gates.simulator import FaultSite
from repro.obs import METRICS

from tests.test_podem_property import random_netlist

needs_numpy = pytest.mark.skipif(not numpy_available(), reason="numpy unavailable")

_KINDS2 = [
    GateKind.AND,
    GateKind.OR,
    GateKind.NAND,
    GateKind.NOR,
    GateKind.XOR,
    GateKind.XNOR,
]


def random_seq_netlist(seed: int) -> GateNetlist:
    """Random netlist with DFF state feedback for sequential grading."""
    rng = random.Random(seed)
    n = GateNetlist(f"s{seed}")
    nets = []
    for i in range(rng.randint(2, 4)):
        nets.append(n.add_gate(f"i{i}", GateKind.INPUT))
    flops = []
    for i in range(rng.randint(1, 4)):
        flops.append(f"ff{i}")
        nets.append(flops[-1])
    for i in range(rng.randint(4, 14)):
        if rng.random() < 0.2:
            kind = GateKind.NOT
            fanins = [rng.choice(nets)]
        else:
            kind = rng.choice(_KINDS2)
            fanins = [rng.choice(nets), rng.choice(nets)]
        nets.append(n.add_gate(f"g{i}", kind, fanins))
    comb = [x for x in nets if not x.startswith("ff")]
    for name in flops:
        n.add_gate(name, GateKind.DFF, [rng.choice(comb)])
    for i, net in enumerate(nets[-2:]):
        n.add_gate(f"O{i}", GateKind.OUTPUT, [net])
    return n.validate()


def grade_both_backends(run):
    """Run ``run(backend)`` cold under both backends; return results + counters."""
    out = {}
    for backend in ("scalar", "numpy"):
        clear_cone_caches()
        clear_kernel_caches()
        before = dict(METRICS.counters("faultsim."))
        result = run(backend)
        after = METRICS.counters("faultsim.")
        delta = {k: after[k] - before.get(k, 0) for k in after if after[k] != before.get(k, 0)}
        out[backend] = (result, delta)
    return out


def assert_identical(out):
    (rs, ds), (rn, dn) = out["scalar"], out["numpy"]
    assert rs.detected == rn.detected
    assert rs.undetected == rn.undetected
    assert rs.first_detection == rn.first_detection
    assert ds == dn


# ----------------------------------------------------------------------
# word packing helpers
# ----------------------------------------------------------------------
class TestWordPacking:
    def test_word_count(self):
        assert word_count(1) == 1
        assert word_count(64) == 1
        assert word_count(65) == 2
        assert word_count(700) == 11

    def test_word_count_rejects_nonpositive(self):
        with pytest.raises(SimulationError):
            word_count(0)

    @needs_numpy
    def test_tail_masks(self):
        masks = tail_masks(130)
        assert [int(m) for m in masks] == [gk.ALL_ONES, gk.ALL_ONES, 0b11]
        assert int(tail_masks(64)[0]) == gk.ALL_ONES

    @needs_numpy
    def test_int_words_roundtrip(self):
        rng = random.Random(7)
        for bits in (1, 63, 64, 65, 500):
            value = rng.getrandbits(bits)
            limbs = int_to_words(value, word_count(max(bits, 1)))
            assert words_to_int(limbs) == value


# ----------------------------------------------------------------------
# backend selection
# ----------------------------------------------------------------------
class TestBackendSelection:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(gk.BACKEND_ENV, raising=False)
        expected = "numpy" if numpy_available() else "scalar"
        assert resolve_backend() == expected

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv(gk.BACKEND_ENV, "scalar")
        assert resolve_backend() == "scalar"

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(gk.BACKEND_ENV, "numpy")
        assert resolve_backend("scalar") == "scalar"

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError, match="unknown simulation backend"):
            resolve_backend("cuda")

    def test_missing_numpy_degrades_to_scalar(self, monkeypatch):
        monkeypatch.setattr(gk, "np", None)
        monkeypatch.setattr(gk, "_warned_fallback", False)
        before = METRICS.counters().get("sim.backend.fallbacks", 0)
        assert resolve_backend("numpy") == "scalar"
        assert METRICS.counters()["sim.backend.fallbacks"] == before + 1


# ----------------------------------------------------------------------
# compiled-program cache
# ----------------------------------------------------------------------
@needs_numpy
class TestProgramCache:
    def test_compile_once_then_reuse(self):
        clear_kernel_caches()
        netlist = random_netlist(3)
        before = dict(METRICS.counters("kernel."))
        first = compiled_program(netlist)
        second = compiled_program(netlist)
        after = METRICS.counters("kernel.")
        assert first is second
        assert after["kernel.compiles"] - before.get("kernel.compiles", 0) == 1
        assert after["kernel.cache.reuses"] - before.get("kernel.cache.reuses", 0) == 1

    def test_clear_forces_recompile(self):
        netlist = random_netlist(4)
        first = compiled_program(netlist)
        clear_kernel_caches()
        assert compiled_program(netlist) is not first

    def test_words_evaluated_counter(self):
        netlist = random_netlist(5)
        sim = CombinationalSimulator(netlist, backend="numpy")
        sources = {g.name: 0 for g in netlist.inputs}
        before = METRICS.counters().get("kernel.words_evaluated", 0)
        sim.run(sources, 64)
        sim.run(sources, 130)
        after = METRICS.counters()["kernel.words_evaluated"]
        # one 1-word pass plus one 3-word pass over every op output
        assert after - before == compiled_program(netlist).op_outputs * (1 + 3)


# ----------------------------------------------------------------------
# good-machine value parity
# ----------------------------------------------------------------------
@needs_numpy
class TestCombinationalParity:
    @pytest.mark.parametrize("seed", range(12))
    def test_values_identical(self, seed):
        netlist = random_netlist(seed)
        rng = random.Random(100 + seed)
        pattern_count = rng.choice([1, 3, 64, 65, 130])
        sources = {
            g.name: rng.getrandbits(pattern_count) for g in netlist.inputs
        }
        scalar = CombinationalSimulator(netlist, backend="scalar").run(sources, pattern_count)
        vector = CombinationalSimulator(netlist, backend="numpy").run(sources, pattern_count)
        assert scalar == vector

    @pytest.mark.parametrize("seed", range(6))
    def test_fault_injection_identical(self, seed):
        netlist = random_netlist(seed)
        rng = random.Random(200 + seed)
        sources = {g.name: rng.getrandbits(96) for g in netlist.inputs}
        for fault in full_fault_universe(netlist):
            site = fault.site()
            scalar = CombinationalSimulator(netlist, backend="scalar").run(sources, 96, site)
            vector = CombinationalSimulator(netlist, backend="numpy").run(sources, 96, site)
            assert scalar == vector, f"fault {fault}"

    def test_missing_source_message_matches_scalar(self):
        netlist = random_netlist(0)
        name = next(g.name for g in netlist.inputs)
        sources = {g.name: 1 for g in netlist.inputs}
        del sources[name]
        for backend in ("scalar", "numpy"):
            with pytest.raises(SimulationError, match=repr(name)):
                CombinationalSimulator(netlist, backend=backend).run(sources, 8)


# ----------------------------------------------------------------------
# fault grading parity (the oracle contract)
# ----------------------------------------------------------------------
@needs_numpy
class TestFaultSimParity:
    @pytest.mark.parametrize("seed", range(20))
    def test_combinational_identical(self, seed):
        netlist = random_netlist(seed)
        faults = full_fault_universe(netlist)
        rng = random.Random(1000 + seed)
        inputs = [g.name for g in netlist.inputs]
        npat = rng.choice([1, 3, 64, 65, 130, 700])
        patterns = [{name: rng.randint(0, 1) for name in inputs} for _ in range(npat)]
        out = grade_both_backends(
            lambda backend: FaultSimulator(netlist, backend=backend).run(patterns, faults)
        )
        assert_identical(out)

    def test_fault_dropping_order(self):
        """Dropped faults keep the scalar batch-by-batch detected order.

        With >64 patterns grading runs in two 64-pattern batches; faults
        detected in batch 0 are dropped (never re-graded) and must
        appear in ``detected`` before any batch-1 detection, with
        ``first_detection`` naming the lowest detecting pattern index.
        """
        netlist = random_netlist(11)
        faults = collapse_faults(netlist, full_fault_universe(netlist))
        rng = random.Random(42)
        inputs = [g.name for g in netlist.inputs]
        patterns = [{name: rng.randint(0, 1) for name in inputs} for _ in range(128)]
        out = grade_both_backends(
            lambda backend: FaultSimulator(netlist, backend=backend).run(patterns, faults)
        )
        assert_identical(out)
        result, delta = out["numpy"]
        indices = [result.first_detection[f] for f in result.detected]
        batches = [i // 64 for i in indices]
        assert batches == sorted(batches), "detected order must follow batch order"
        assert delta.get("faultsim.faults.dropped", 0) == len(result.detected)

    @pytest.mark.parametrize("seed", range(12))
    def test_sequential_identical(self, seed):
        netlist = random_seq_netlist(seed)
        faults = full_fault_universe(netlist)
        rng = random.Random(2000 + seed)
        inputs = [g.name for g in netlist.inputs]
        nseq, ncyc = rng.choice([1, 5, 64, 70]), rng.randint(1, 6)
        sequences = [
            [{name: rng.randint(0, 1) for name in inputs} for _ in range(ncyc)]
            for _ in range(nseq)
        ]
        out = grade_both_backends(
            lambda backend: sequential_fault_grade(
                netlist, sequences, faults, backend=backend
            )
        )
        assert_identical(out)

    def test_sequential_chunking_past_pack_limit(self):
        """More than SEQUENCE_PACK_LIMIT sequences grades in chunks."""
        netlist = random_seq_netlist(1)
        faults = full_fault_universe(netlist)
        rng = random.Random(9)
        inputs = [g.name for g in netlist.inputs]
        count = SEQUENCE_PACK_LIMIT + 40
        sequences = [
            [{name: rng.randint(0, 1) for name in inputs} for _ in range(2)]
            for _ in range(count)
        ]
        out = grade_both_backends(
            lambda backend: sequential_fault_grade(
                netlist, sequences, faults, backend=backend
            )
        )
        assert_identical(out)


# ----------------------------------------------------------------------
# the four systems
# ----------------------------------------------------------------------
@needs_numpy
class TestSystemsParity:
    @pytest.mark.parametrize(
        "build", [build_system1, build_system2, build_system3, build_system4]
    )
    def test_flattened_chip_grading_identical(self, build):
        soc = build(atpg_seed=0)
        netlist = flatten_soc(soc, with_hscan=False, scan_access="none")
        faults = collapse_faults(netlist, full_fault_universe(netlist))
        rng = random.Random(0)
        inputs = [g.name for g in netlist.inputs]
        sequences = [
            [{name: rng.getrandbits(1) for name in inputs} for _ in range(5)]
            for _ in range(4)
        ]
        out = grade_both_backends(
            lambda backend: sequential_fault_grade(
                netlist, sequences, faults, sample=60, seed=1, backend=backend
            )
        )
        assert_identical(out)

    def test_core_scan_grading_identical(self):
        from repro.elaborate import elaborate

        soc = build_system1(atpg_seed=0)
        core = soc.testable_cores()[0]
        netlist = elaborate(core.circuit).netlist
        faults = collapse_faults(netlist, full_fault_universe(netlist))
        rng = random.Random(3)
        sources = [
            g.name
            for g in netlist.gates()
            if g.kind in (GateKind.INPUT, GateKind.DFF, GateKind.SDFF)
        ]
        patterns = [
            {name: rng.getrandbits(1) for name in sources} for _ in range(192)
        ]
        out = grade_both_backends(
            lambda backend: FaultSimulator(netlist, backend=backend).run(patterns, faults)
        )
        assert_identical(out)
