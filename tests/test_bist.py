"""Tests for the memory BIST substrate: behavioral RAM, March tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bist import (
    MARCH_C_MINUS,
    MARCH_X,
    MARCH_Y,
    BehavioralMemory,
    CellStuckAt,
    InversionCoupling,
    plan_memory_bist,
    run_march,
)
from repro.bist.march import grade_march
from repro.bist.memory import all_stuck_at_faults, neighbour_coupling_faults


class TestBehavioralMemory:
    def test_read_write(self):
        memory = BehavioralMemory(16, 8)
        memory.write(3, 0xA5)
        assert memory.read(3) == 0xA5
        assert memory.read(4) == 0

    def test_address_bounds(self):
        memory = BehavioralMemory(16, 8)
        with pytest.raises(IndexError):
            memory.read(16)
        with pytest.raises(IndexError):
            memory.write(-1, 0)

    def test_stuck_at_fault(self):
        memory = BehavioralMemory(16, 8, fault=CellStuckAt(5, 2, 1))
        memory.write(5, 0)
        assert memory.read(5) == 0b100

    def test_coupling_fault(self):
        fault = InversionCoupling(2, 0, 3, 0)
        memory = BehavioralMemory(16, 8, fault=fault)
        memory.write(3, 0)
        memory.write(2, 1)  # aggressor bit transitions -> victim flips
        assert memory.read(3) & 1 == 1

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            BehavioralMemory(0, 8)

    @given(address=st.integers(0, 15), value=st.integers(0, 255))
    @settings(max_examples=25, deadline=None)
    def test_fault_free_memory_is_faithful(self, address, value):
        memory = BehavioralMemory(16, 8)
        memory.write(address, value)
        assert memory.read(address) == value


class TestMarchTests:
    def test_fault_free_memory_passes(self):
        for test in (MARCH_C_MINUS, MARCH_X, MARCH_Y):
            assert run_march(test, BehavioralMemory(32, 8)) is None

    def test_march_c_detects_all_stuck_ats(self):
        faults = all_stuck_at_faults(16, 4)
        detected, undetected = grade_march(MARCH_C_MINUS, 16, 4, faults)
        assert not undetected

    def test_march_c_detects_neighbour_couplings(self):
        faults = neighbour_coupling_faults(8, 2)
        detected, undetected = grade_march(MARCH_C_MINUS, 8, 2, faults)
        assert not undetected

    def test_march_x_weaker_than_c(self):
        faults = neighbour_coupling_faults(8, 2)
        x_detected, _ = grade_march(MARCH_X, 8, 2, faults)
        c_detected, _ = grade_march(MARCH_C_MINUS, 8, 2, faults)
        assert x_detected <= c_detected

    def test_cycle_counts(self):
        assert MARCH_C_MINUS.operations_per_word == 10
        assert MARCH_C_MINUS.cycle_count(4096) == 40960
        assert MARCH_X.operations_per_word == 6
        assert MARCH_Y.operations_per_word == 8

    def test_element_str(self):
        assert str(MARCH_C_MINUS.elements[1]) == "U(r0, w1)"


class TestBistPlanning:
    def test_plan_for_system1(self):
        from repro.designs import build_system1

        plan = plan_memory_bist(build_system1())
        assert {row.core for row in plan.rows} == {"RAM", "ROM"}
        assert plan.total_cycles == 2 * MARCH_C_MINUS.cycle_count(4096)
        assert plan.total_cells > 0

    def test_no_memories_no_cells(self):
        from repro.designs import build_system2

        plan = plan_memory_bist(build_system2())
        assert not plan.rows
        assert plan.total_cells == 0
