"""Tests for the planning daemon (``repro.serve``).

Covers the wire protocol (addresses, envelopes, job specs), the job
queue (priority order, coalescing, capacity), the daemon's full request
lifecycle over a unix-domain socket (submit/wait/cancel/timeout, result
caching, batched sweeps, per-tenant counters), determinism against the
one-shot planners, graceful drain -- including the subprocess SIGTERM
path with the ledger flush -- and the env-validation satellites
(``REPRO_PLAN_CACHE`` / ``REPRO_JOBS``).
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.errors import ProtocolError, ServeError, UsageError
from repro.obs import METRICS
from repro.serve import (
    ServeClient,
    ServeConfig,
    ServeDaemon,
    start_background,
)
from repro.serve import protocol
from repro.serve.jobs import Job, JobQueue, QueueDraining, QueueFull

SRC_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "src")


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------
class TestAddresses:
    def test_tcp(self):
        assert protocol.parse_address("127.0.0.1:7457") == ("tcp", ("127.0.0.1", 7457))

    def test_unix_prefix(self):
        assert protocol.parse_address("unix:/tmp/x.sock") == ("unix", "/tmp/x.sock")

    def test_bare_path_is_unix(self):
        assert protocol.parse_address("/tmp/x.sock") == ("unix", "/tmp/x.sock")

    @pytest.mark.parametrize("bad", ["", "  ", "unix:", "noport", ":7457",
                                     "host:notaport", "host:70000"])
    def test_bad_addresses_raise(self, bad):
        with pytest.raises(ProtocolError):
            protocol.parse_address(bad)

    def test_roundtrip(self):
        kind, value = protocol.parse_address("unix:/tmp/x.sock")
        assert protocol.format_address(kind, value) == "unix:/tmp/x.sock"


class TestEnvelopes:
    def test_decode_rejects_non_json(self):
        with pytest.raises(ProtocolError) as err:
            protocol.decode_request(b"not json\n")
        assert err.value.code == "bad-request"

    def test_decode_rejects_wrong_schema(self):
        line = json.dumps({"schema": "nope", "schema_version": 1, "op": "ping"})
        with pytest.raises(ProtocolError):
            protocol.decode_request(line.encode())

    def test_decode_rejects_newer_version(self):
        line = json.dumps(protocol.request_envelope("ping", schema_version=99))
        with pytest.raises(ProtocolError) as err:
            protocol.decode_request(line.encode())
        assert err.value.code == "unsupported-version"

    def test_decode_rejects_unknown_op(self):
        line = json.dumps(protocol.request_envelope("dance"))
        with pytest.raises(ProtocolError) as err:
            protocol.decode_request(line.encode())
        assert err.value.code == "unknown-op"

    def test_decode_rejects_oversized(self):
        line = b"x" * (protocol.MAX_LINE_BYTES + 1)
        with pytest.raises(ProtocolError) as err:
            protocol.decode_request(line)
        assert err.value.code == "oversized"


class TestJobSpecs:
    def test_normalizes_defaults(self):
        spec = protocol.validate_job_spec({"type": "plan", "system": "System1"})
        assert spec == {
            "type": "plan", "system": "System1", "params": {},
            "priority": 0, "timeout_s": None, "tenant": "default",
        }

    def test_sleep_is_systemless(self):
        spec = protocol.validate_job_spec({"type": "sleep", "system": "ignored"})
        assert spec["system"] is None

    @pytest.mark.parametrize("bad", [
        None,
        {"type": "nope", "system": "System1"},
        {"type": "plan"},
        {"type": "plan", "system": "System1", "priority": "high"},
        {"type": "plan", "system": "System1", "timeout_s": -1},
        {"type": "plan", "system": "System1", "tenant": "bad tenant!"},
        {"type": "plan", "system": "System1", "params": "notadict"},
    ])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(ProtocolError):
            protocol.validate_job_spec(bad)

    def test_cache_key_is_order_insensitive(self):
        a = protocol.canonical_params_key("plan", "System1", {"x": 1, "y": 2})
        b = protocol.canonical_params_key("plan", "System1", {"y": 2, "x": 1})
        assert a == b


# ----------------------------------------------------------------------
# the queue (no event loop needed for submit-side behaviour)
# ----------------------------------------------------------------------
def _job(seq, priority=0, job_type="sleep", system=None):
    return Job(id=f"j{seq}", seq=seq, type=job_type, system=system,
               params={}, priority=priority)


class TestJobQueue:
    def test_priority_then_fifo(self):
        queue = JobQueue()
        for job in (_job(1, 0), _job(2, 5), _job(3, 5), _job(4, 1)):
            queue.submit(job)
        order = []
        while True:
            popped = queue._pop_runnable()
            if popped is None:
                break
            order.append(popped.id)
        assert order == ["j2", "j3", "j4", "j1"]

    def test_capacity(self):
        queue = JobQueue(max_size=2)
        queue.submit(_job(1))
        queue.submit(_job(2))
        with pytest.raises(QueueFull):
            queue.submit(_job(3))

    def test_draining_rejects(self):
        queue = JobQueue()
        queue.start_drain()
        with pytest.raises(QueueDraining):
            queue.submit(_job(1))

    def test_coalesce_same_system_sweeps_only(self):
        queue = JobQueue()
        lead = _job(1, job_type="sweep", system="System1")
        mate = _job(2, job_type="sweep", system="System1")
        other = _job(3, job_type="sweep", system="System2")
        plan = _job(4, job_type="plan", system="System1")
        for job in (mate, other, plan):
            queue.submit(job)
        batch = queue.coalesce_sweeps(lead)
        assert [job.id for job in batch] == ["j2"]
        remaining = {entry[2].id for entry in queue._heap}
        assert remaining == {"j3", "j4"}

    def test_coalesce_orders_by_priority(self):
        queue = JobQueue()
        lead = _job(1, job_type="sweep", system="System1")
        low = _job(2, 0, job_type="sweep", system="System1")
        high = _job(3, 9, job_type="sweep", system="System1")
        queue.submit(low)
        queue.submit(high)
        batch = queue.coalesce_sweeps(lead)
        assert [job.id for job in batch] == ["j3", "j2"]


# ----------------------------------------------------------------------
# a live daemon on a unix socket (session-scoped: warm state is the point)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    socket_path = tmp_path_factory.mktemp("serve") / "repro.sock"
    daemon = start_background(
        ServeConfig(address=f"unix:{socket_path}", max_queue=8)
    )
    yield daemon
    daemon.request_drain()
    assert daemon.wait_finished(30)


@pytest.fixture()
def client(daemon):
    with ServeClient(daemon.address) as client:
        yield client


class TestDaemonBasics:
    def test_ping(self, client):
        response = client.ping()
        assert response["server"] == f"repro-serve/{protocol.PROTOCOL_VERSION}"
        assert response["draining"] is False

    def test_unknown_system_rejected_at_submit(self, client):
        with pytest.raises(ServeError) as err:
            client.submit("plan", "SystemX")
        assert err.value.code == "unknown-system"

    def test_unknown_job_id(self, client):
        with pytest.raises(ServeError) as err:
            client.status("j9999")
        assert err.value.code == "unknown-job"

    def test_result_before_done_is_not_done(self, client):
        job_id = client.submit("sleep", params={"seconds": 0.3, "steps": 10})
        with pytest.raises(ServeError) as err:
            client.result(job_id)
        assert err.value.code == "not-done"
        descriptor, _ = client.wait(job_id)
        assert descriptor["state"] == "done"

    def test_wait_timeout_returns_running_descriptor(self, client):
        job_id = client.submit("sleep", params={"seconds": 0.4, "steps": 20})
        descriptor, result = client.wait(job_id, timeout_s=0.05)
        assert descriptor["state"] in ("queued", "running")
        assert result is None
        descriptor, _ = client.wait(job_id)
        assert descriptor["state"] == "done"

    def test_bad_job_failure_is_a_failed_job_not_an_error(self, client):
        job_id = client.submit("plan", "System1",
                               params={"select": {"NOPE": 1}})
        descriptor, result = client.wait(job_id)
        assert descriptor["state"] == "failed"
        assert "NOPE" in descriptor["error"]
        assert result is None


class TestDaemonResults:
    def test_plan_matches_one_shot(self, client):
        from repro.designs import system_builders
        from repro.flow.export import plan_to_dict
        from repro.soc import plan_soc_test

        result = client.run("plan", "System1")
        soc = system_builders()["System1"]()
        assert result == plan_to_dict(plan_soc_test(soc))

    def test_sweep_matches_design_space(self, client):
        from repro.designs import system_builders
        from repro.soc import design_space

        result = client.run("sweep", "System1")
        soc = system_builders()["System1"]()
        points = design_space(soc)
        assert result["partial"] is False
        assert [(p["index"], p["tat"], p["chip_cells"], p["label"])
                for p in result["points"]] == [
            (p.index, p.tat, p.chip_cells, p.label()) for p in points
        ]

    def test_partial_sweep_selection(self, client):
        from repro.designs import system_builders
        from repro.soc import plan_soc_test

        soc = system_builders()["System1"]()
        core = soc.testable_cores()[0].name
        result = client.run("sweep", "System1",
                            params={"selections": [{core: 2}]})
        assert result["partial"] is True
        assert len(result["points"]) == 1
        point = result["points"][0]
        assert point["selection"][core] == 2
        plan = plan_soc_test(soc, {c.name: 0 for c in soc.testable_cores()}
                             | {core: 1})
        assert point["tat"] == plan.total_tat

    def test_repeat_requests_hit_the_result_cache(self, client):
        hits_before = METRICS.counter("serve.results.hits").value
        first = client.run("sweep", "System1")
        second = client.run("sweep", "System1")
        assert first == second
        assert METRICS.counter("serve.results.hits").value > hits_before

    def test_lint_job(self, client):
        result = client.run("lint", "System1")
        assert result["exit"] in (0, 1)
        assert "diagnostics" in result["report"]

    def test_tenant_counters(self, client, daemon):
        client.run("sleep", params={"seconds": 0.01}, tenant="teamA")
        stats = client.stats()
        assert stats["tenants"]["teamA"]["submitted"] >= 1
        assert stats["tenants"]["teamA"]["done"] >= 1


class TestDaemonScheduling:
    def test_priority_order_via_run_seq(self, client):
        # a blocker occupies the worker while the queue builds up
        blocker = client.submit("sleep", params={"seconds": 0.4, "steps": 20})
        low = client.submit("sleep", params={"seconds": 0.01}, priority=0)
        high = client.submit("sleep", params={"seconds": 0.01}, priority=5)
        order = {}
        for job_id in (blocker, low, high):
            descriptor, _ = client.wait(job_id)
            assert descriptor["state"] == "done"
            order[job_id] = descriptor["run_seq"]
        assert order[blocker] < order[high] < order[low]

    def test_cancel_queued(self, client):
        blocker = client.submit("sleep", params={"seconds": 0.3, "steps": 20})
        victim = client.submit("sleep", params={"seconds": 5})
        descriptor = client.cancel(victim)
        assert descriptor["state"] == "cancelled"
        descriptor, _ = client.wait(victim)
        assert descriptor["state"] == "cancelled"
        client.wait(blocker)

    def test_cancel_running_at_checkpoint(self, client):
        job_id = client.submit("sleep", params={"seconds": 20, "steps": 200})
        deadline = time.monotonic() + 10
        while client.status(job_id)["state"] == "queued":
            assert time.monotonic() < deadline
            time.sleep(0.01)
        client.cancel(job_id)
        descriptor, _ = client.wait(job_id)
        assert descriptor["state"] == "cancelled"
        assert descriptor["wall_s"] < 10

    def test_per_job_timeout(self, client):
        job_id = client.submit("sleep", params={"seconds": 20, "steps": 200},
                               timeout_s=0.2)
        descriptor, _ = client.wait(job_id)
        assert descriptor["state"] == "timeout"
        assert "0.2" in descriptor["error"]

    def test_queue_full(self, client):
        blocker = client.submit("sleep", params={"seconds": 0.5, "steps": 25})
        accepted = []
        with pytest.raises(ServeError) as err:
            for _ in range(20):  # max_queue is 8
                accepted.append(
                    client.submit("sleep", params={"seconds": 0.01})
                )
        assert err.value.code == "queue-full"
        for job_id in [blocker] + accepted:
            client.wait(job_id)

    def test_sweeps_coalesce_into_one_batch(self, client):
        blocker = client.submit("sleep", params={"seconds": 0.4, "steps": 20})
        sweeps = [client.submit("sweep", "System2") for _ in range(3)]
        results = []
        for job_id in sweeps:
            descriptor, result = client.wait(job_id)
            assert descriptor["state"] == "done"
            results.append((descriptor, result))
        client.wait(blocker)
        # identical payloads, served from one coalesced batch
        assert results[0][1] == results[1][1] == results[2][1]
        batched = [d["batched_with"] for d, _ in results]
        # cached repeats don't batch, so only assert when work happened
        if METRICS.counter("serve.batch.coalesced").value:
            assert max(batched) >= 1


class TestConcurrentClients:
    def test_eight_clients_identical_results(self, daemon):
        import threading

        results = [None] * 8
        errors = []

        def worker(index):
            try:
                with ServeClient(daemon.address) as client:
                    results[index] = client.run("sweep", "System1")
            except Exception as error:
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert all(result == results[0] for result in results)


# ----------------------------------------------------------------------
# drain
# ----------------------------------------------------------------------
class TestDrain:
    def test_shutdown_op_finishes_queued_jobs(self, tmp_path):
        socket_path = tmp_path / "drain.sock"
        ledger_path = tmp_path / "ledger.jsonl"
        daemon = start_background(ServeConfig(
            address=f"unix:{socket_path}", ledger=str(ledger_path)
        ))
        with ServeClient(daemon.address) as client:
            running = client.submit("sleep", params={"seconds": 0.3, "steps": 15})
            queued = client.submit("sleep", params={"seconds": 0.05})
            client.shutdown()
            with pytest.raises(ServeError) as err:
                client.submit("sleep")
            assert err.value.code == "draining"
            for job_id in (running, queued):
                descriptor, _ = client.wait(job_id)
                assert descriptor["state"] == "done"
        assert daemon.wait_finished(30)

        records = [json.loads(line) for line in ledger_path.read_text().splitlines()]
        assert len(records) == 1
        record = records[0]
        assert record["kind"] == "serve"
        assert len(record["samples"]) == 2
        assert record["results"]["drained"] is True
        states = {job["id"]: job["state"] for job in record["results"]["jobs"]}
        assert set(states.values()) == {"done"}

    def test_sigterm_drains_and_flushes_ledger(self, tmp_path):
        """The subprocess path: real signal, real exit code, real flush."""
        socket_path = tmp_path / "sig.sock"
        ledger_path = tmp_path / "ledger.jsonl"
        address_file = tmp_path / "addr.txt"
        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--listen", f"unix:{socket_path}",
             "--ledger", str(ledger_path),
             "--address-file", str(address_file)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        try:
            deadline = time.monotonic() + 30
            while not address_file.exists():
                assert time.monotonic() < deadline, "daemon never became ready"
                assert process.poll() is None, process.stderr.read().decode()
                time.sleep(0.05)
            address = address_file.read_text().strip()
            with ServeClient(address) as client:
                running = client.submit("sleep",
                                        params={"seconds": 0.5, "steps": 25})
                queued = client.submit("sleep", params={"seconds": 0.05})
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()

        records = [json.loads(line) for line in ledger_path.read_text().splitlines()]
        assert len(records) == 1
        record = records[0]
        assert record["kind"] == "serve"
        assert record["results"]["drained"] is True
        states = {job["id"]: job["state"] for job in record["results"]["jobs"]}
        assert states == {"j0001": "done", "j0002": "done"}
        assert len(record["samples"]) == 2


# ----------------------------------------------------------------------
# satellites: env validation, pool reuse
# ----------------------------------------------------------------------
class TestEnvValidation:
    def test_plan_cache_accepts_boolean_spellings(self, monkeypatch):
        from repro.exec.cache import CACHE_ENV, cache_enabled

        for raw, expected in [("1", True), ("TRUE", True), ("on", True),
                              ("0", False), ("False", False), ("off", False),
                              ("no", False), ("yes", True)]:
            monkeypatch.setenv(CACHE_ENV, raw)
            assert cache_enabled() is expected
        monkeypatch.delenv(CACHE_ENV)
        assert cache_enabled() is True

    def test_plan_cache_rejects_garbage(self, monkeypatch):
        from repro.exec.cache import CACHE_ENV, cache_enabled

        monkeypatch.setenv(CACHE_ENV, "fales")
        with pytest.raises(UsageError) as err:
            cache_enabled()
        assert "fales" in str(err.value)
        assert CACHE_ENV in str(err.value)

    def test_jobs_rejects_garbage_with_offending_string(self, monkeypatch):
        from repro.exec.pool import JOBS_ENV, resolve_jobs

        monkeypatch.setenv(JOBS_ENV, "many")
        with pytest.raises(UsageError) as err:
            resolve_jobs()
        assert "many" in str(err.value)
        assert JOBS_ENV in str(err.value)


class TestPoolReuse:
    def test_reuse_counter_increments_across_maps(self):
        from repro.exec import ParallelExecutor
        from tests.test_exec import _square

        counter = METRICS.counter("exec.pool.reuses")
        with ParallelExecutor(2) as executor:
            executor.map(_square, [1, 2, 3, 4])
            if not executor.parallel:
                pytest.skip("process pools unavailable on this platform")
            before = counter.value
            executor.map(_square, [5, 6, 7, 8])
            assert counter.value > before


# ----------------------------------------------------------------------
# telemetry surface: job spans, metrics op, latency stats, repro top
# ----------------------------------------------------------------------
class TestTelemetrySurface:
    @pytest.fixture()
    def finished_job(self, client):
        job_id = client.submit("plan", "System1")
        descriptor, _ = client.wait(job_id)
        assert descriptor["state"] == "done"
        return job_id

    def test_job_spans_cover_the_lifecycle(self, client, finished_job):
        from repro.obs import span_tree_problems
        from repro.obs.benchjson import validate_chrome_trace

        spans = client.spans(finished_job)
        assert spans[0]["name"] == "serve.job"
        names = {event["name"] for event in spans}
        for phase in ("validate", "queue_wait", "run"):
            assert f"serve.job.{phase}" in names
        assert span_tree_problems(spans) == []
        validate_chrome_trace({"traceEvents": spans})
        root_id = spans[0]["args"]["span_id"]
        for event in spans[1:]:
            assert event["args"]["parent_id"] == root_id
            assert event["dur"] >= 0
        # each job renders on its own row: tid is the job sequence
        assert spans[0]["tid"] == int(finished_job.lstrip("j"))

    def test_descriptor_carries_queue_wait(self, client, finished_job):
        descriptor = client.status(finished_job)
        assert descriptor["queue_wait_s"] is not None
        assert descriptor["queue_wait_s"] >= 0

    def test_metrics_op_exposition_parses(self, client, finished_job):
        from repro.obs.expo import parse_exposition, summary_from_series

        text = client.metrics()
        parsed = parse_exposition(text)  # the CI scrape path
        assert any(name.startswith("repro_serve_") for name in parsed)
        latency = summary_from_series(parsed, "serve.job_latency")
        assert latency["count"] >= 1 and latency["p99"] is not None
        wait = summary_from_series(parsed, "serve.queue_wait")
        assert wait["count"] >= 1

    def test_stats_latency_summaries(self, client, finished_job):
        stats = client.stats()
        for key in ("queue_wait", "job_latency"):
            summary = stats["latency"][key]
            assert summary["count"] >= 1
            assert summary["p50"] is not None

    def test_top_renders_live_dashboard(self, daemon, client, finished_job):
        import io

        from repro.serve.top import poll, render_frame, run_top

        with ServeClient(daemon.address) as top_client:
            first = poll(top_client)
            second = poll(top_client)
        page = render_frame(second, first)
        assert "queue" in page and "job_latency" in page
        assert daemon.address in page
        out = io.StringIO()
        assert run_top(daemon.address, once=True, stream=out) == 0
        assert "latency" in out.getvalue()
        expo_out = io.StringIO()
        assert run_top(daemon.address, expo=True, stream=expo_out) == 0
        assert "repro_serve_requests" in expo_out.getvalue()

    def test_top_unreachable_daemon_exits_1(self, tmp_path):
        import io

        missing = tmp_path / "nope.sock"
        assert run_top_address_fails(f"unix:{missing}")


def run_top_address_fails(address):
    import io

    from repro.serve.top import run_top

    return run_top(address, once=True, stream=io.StringIO()) == 1


class TestServeLedgerTelemetry:
    def test_drain_record_carries_histograms_phases_spans(self, tmp_path):
        from repro.obs import span_tree_problems
        from repro.obs.ledger import validate_record

        socket_path = tmp_path / "tele.sock"
        ledger_path = tmp_path / "ledger.jsonl"
        daemon = start_background(ServeConfig(
            address=f"unix:{socket_path}", ledger=str(ledger_path)
        ))
        with ServeClient(daemon.address) as client:
            job_id = client.submit("plan", "System1")
            client.wait(job_id)
            client.shutdown()
        assert daemon.wait_finished(30)

        record = json.loads(ledger_path.read_text().splitlines()[0])
        validate_record(record)  # schema v3 with histograms
        # the registry is process-global: other tests' jobs may already
        # have observed latencies, so assert presence, not exact count
        assert record["histograms"]["serve.job_latency"]["count"] >= 1
        assert record["histograms"]["serve.queue_wait"]["count"] >= 1
        (summary,) = record["results"]["jobs"]
        assert summary["queue_wait_s"] >= 0
        assert {"validate", "queue_wait", "run"} <= set(summary["phases"])
        assert summary["spans"][0]["name"] == "serve.job"
        assert span_tree_problems(summary["spans"]) == []
