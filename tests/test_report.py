"""Tests for run reports (:mod:`repro.obs.report`) and ``repro report``."""

import json

import pytest

from repro.obs.ledger import make_record
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (
    RunReport,
    build_run_report,
    counter_diff,
    hotspots,
    stage_waterfall,
)

ENV = {"python": "3.12.0", "platform": "linux", "cpus": 8, "repro_jobs": None}


def record(counters=None, samples=(0.5,)):
    return make_record(
        "profile-System1",
        list(samples),
        counters=counters if counters is not None else {"a": 1, "z": 0},
        kind="profile",
        env=ENV,
        git_sha="a" * 40,
        timestamp="2026-08-06T12:00:00Z",
    )


def span(name, ts, dur, depth=0):
    return {"name": name, "ts": ts, "dur": dur, "args": {"depth": depth}}


class TestStageWaterfall:
    def test_rows_relative_to_earliest_span(self):
        events = [
            span("corelevel.hscan", 1_000_000, 500_000),
            span("atpg.run", 2_000_000, 1_000_000),
            span("atpg.run.podem", 2_100_000, 200_000, depth=1),
        ]
        rows = stage_waterfall(events)
        by_stage = {row["stage"]: row for row in rows}
        core = by_stage["core-level"]
        assert core["start"] == 0.0 and core["end"] == pytest.approx(0.5)
        atpg = by_stage["ATPG"]
        assert atpg["start"] == pytest.approx(1.0)
        assert atpg["end"] == pytest.approx(2.0)
        # busy counts only the outermost (min-depth) spans
        assert atpg["busy"] == pytest.approx(1.0)
        assert atpg["spans"] == 2

    def test_prefix_matching_is_exact_or_dotted(self):
        rows = stage_waterfall([span("atpgx", 0, 10)])
        assert rows == []  # "atpgx" must not match the "atpg" stage

    def test_empty_trace(self):
        assert stage_waterfall([]) == []


class TestHotspots:
    def test_sorted_by_total_time_and_capped(self):
        registry = MetricsRegistry()
        registry.histogram("fast.time").observe(0.1)
        registry.histogram("slow.time").observe(1.0)
        registry.histogram("slow.time").observe(2.0)
        registry.histogram("not_a_timer").observe(99.0)
        rows = hotspots(registry, top_k=1)
        assert len(rows) == 1
        assert rows[0]["section"] == "slow"
        assert rows[0]["seconds"] == pytest.approx(3.0)
        assert rows[0]["calls"] == 2


class TestCounterDiff:
    def test_no_baseline(self):
        diff = counter_diff({"a": 1}, None)
        assert diff["available"] is False

    def test_zero_vs_absent_is_a_change(self):
        diff = counter_diff({"a": 1, "z": 0}, {"a": 1})
        assert diff["available"] is True
        assert diff["changed"] == [
            {"counter": "z", "baseline": None, "candidate": 0}
        ]
        assert diff["unchanged"] == 1


class TestRunReport:
    def build(self, baseline=None):
        registry = MetricsRegistry()
        registry.histogram("atpg.run.time").observe(0.25)
        return build_run_report(
            title="System1 pipeline",
            record=record(),
            baseline=baseline,
            trace_events=[span("atpg.run", 0, 250_000)],
            registry=registry,
            summary={"serial TAT": 17_000},
        )

    def test_markdown_contains_every_section(self):
        text = self.build(baseline=record(counters={"a": 2})).to_markdown()
        assert "# Run report — System1 pipeline" in text
        assert "## Plan summary" in text and "17000" in text
        assert "## Stage waterfall" in text and "ATPG" in text and "█" in text
        assert "## Hotspots" in text and "`atpg.run`" in text
        assert "## Counters vs baseline" in text
        assert "| `a` | 2 | 1 |" in text  # the drifted counter
        assert "aaaaaaaaaaaa" in text  # the short git sha

    def test_markdown_without_baseline(self):
        text = self.build().to_markdown()
        assert "counter diff skipped" in text

    def test_markdown_counters_all_match(self):
        text = self.build(baseline=record()).to_markdown()
        assert "counters match the baseline exactly" in text

    def test_html_is_escaped_and_structured(self):
        report = self.build(baseline=record(counters={"a": 2}))
        report.title = "<System1 & pipeline>"
        html = report.to_html()
        assert "&lt;System1 &amp; pipeline&gt;" in html
        assert "class='bar'" in html  # waterfall lanes rendered
        assert "<h2>Hotspots</h2>" in html
        assert "<System1" not in html.replace("<System1 ", "")

    def test_json_round_trip(self):
        payload = json.loads(self.build().to_json())
        assert payload["record"]["bench"] == "profile-System1"
        assert payload["waterfall"][0]["stage"] == "ATPG"
        assert payload["counter_diff"]["available"] is False

    def test_waterfall_scale_handles_zero_duration(self):
        report = RunReport(title="t", record=record(), waterfall=[
            {"stage": "s", "prefix": "s", "start": 0.0, "end": 0.0,
             "busy": 0.0, "spans": 1},
        ])
        assert "s" in report.to_markdown()
        assert "s" in report.to_html()


class TestCliReport:
    def test_report_markdown_to_file(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs import TRACER

        out = tmp_path / "report.md"
        ledger = tmp_path / "ledger.jsonl"
        assert main([
            "report", "System1", "--quick",
            "-o", str(out), "--ledger", str(ledger),
        ]) == 0
        assert not TRACER.enabled  # tracing restored afterwards
        text = out.read_text()
        assert "# Run report — System1 pipeline" in text
        assert "## Stage waterfall" in text
        assert "## Hotspots" in text
        from repro.obs.ledger import RunLedger

        (appended,) = RunLedger(ledger).records()
        assert appended["bench"] == "profile-System1-quick"
        assert appended["kind"] == "profile"

    def test_report_json_with_baseline_diff(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs.ledger import RunLedger

        baseline = tmp_path / "baseline.jsonl"
        RunLedger(baseline).append(
            make_record(
                "profile-System1-quick",
                [0.5],
                counters={"phantom.counter": 3},
                kind="profile",
                env=ENV,
                git_sha=None,
                timestamp="2026-08-06T12:00:00Z",
            )
        )
        assert main([
            "report", "System1", "--quick", "-f", "json",
            "--baseline", str(baseline),
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["baseline"]["counters"] == {"phantom.counter": 3}
        changed = {row["counter"] for row in payload["counter_diff"]["changed"]}
        assert "phantom.counter" in changed  # absent in the fresh run

    def test_missing_baseline_is_usage_error(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main([
                "report", "System1", "--quick",
                "--baseline", str(tmp_path / "none.jsonl"),
            ])
        assert exc.value.code == 2
