"""Tests for repro.util helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import NameGenerator, bits_to_int, int_to_bits, pack_patterns, popcount64, render_table


class TestBitops:
    def test_bits_to_int_basic(self):
        assert bits_to_int([1, 0, 1]) == 5

    def test_bits_to_int_empty(self):
        assert bits_to_int([]) == 0

    def test_bits_to_int_rejects_non_bits(self):
        with pytest.raises(ValueError):
            bits_to_int([0, 2])

    def test_int_to_bits_basic(self):
        assert int_to_bits(5, 4) == [1, 0, 1, 0]

    def test_int_to_bits_rejects_negative(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 4)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_roundtrip(self, value):
        assert bits_to_int(int_to_bits(value, 33)) == value

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=64))
    def test_roundtrip_bits(self, bits):
        assert int_to_bits(bits_to_int(bits), len(bits)) == bits

    def test_pack_patterns(self):
        words = pack_patterns([[1, 0], [1, 1], [0, 1]], signal_count=2)
        assert words == [0b011, 0b110]

    def test_pack_patterns_rejects_wide(self):
        with pytest.raises(ValueError):
            pack_patterns([[1]] * 65, signal_count=1)

    def test_pack_patterns_rejects_bad_width(self):
        with pytest.raises(ValueError):
            pack_patterns([[1, 0], [1]], signal_count=2)

    def test_popcount64(self):
        assert popcount64(0) == 0
        assert popcount64(0b1011) == 3
        assert popcount64((1 << 64) - 1) == 64

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_popcount_matches_bincount(self, word):
        assert popcount64(word) == bin(word).count("1")


class TestNameGenerator:
    def test_fresh_unique(self):
        gen = NameGenerator()
        names = {gen.fresh("x") for _ in range(100)}
        assert len(names) == 100

    def test_avoids_reserved(self):
        gen = NameGenerator(reserved=["x_0", "x_1"])
        assert gen.fresh("x") == "x_2"

    def test_reserve_after_creation(self):
        gen = NameGenerator()
        gen.reserve("y_0")
        assert gen.fresh("y") == "y_1"


class TestRenderTable:
    def test_renders_header_and_rows(self):
        text = render_table(["a", "bb"], [[1, "x"], [22, "yy"]])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "bb"]
        assert "22" in lines[3]

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_title(self):
        text = render_table(["a"], [[1]], title="T1")
        assert text.splitlines()[0] == "T1"
