"""The paper's headline flow on System 1 (the barcode scanner SOC).

Sweeps the full design space (Figure 10), shows the three Table 1
characteristic points, and runs both optimizer objectives:

  (i)  minimize test time within an area budget, and
  (ii) minimize area within a test-time budget.

Run:  python examples/barcode_tradeoff.py
"""

from repro.designs import build_system1
from repro.soc import design_space, plan_soc_test
from repro.soc.optimizer import SocetOptimizer
from repro.util import render_table


def main():
    soc = build_system1()
    print(f"{soc.name}: cores = {sorted(soc.cores)}")

    # ---------------- Figure 10: the design space ----------------
    points = design_space(soc)
    rows = [[p.index, p.chip_cells, p.tat, p.label()] for p in points]
    print()
    print(render_table(["pt", "chip cells", "TAT", "versions"], rows,
                       title=f"design space ({len(points)} points)"))

    min_area = points[0]
    min_tat = min(points, key=lambda p: (p.tat, p.chip_cells))
    print(f"\nmin-area point:  {min_area.chip_cells} cells @ {min_area.tat} cycles")
    print(f"min-TAT point:   {min_tat.chip_cells} cells @ {min_tat.tat} cycles "
          f"({min_tat.label()})")
    print(f"TAT reduction:   {min_area.tat / min_tat.tat:.2f}x "
          f"for {min_tat.chip_cells - min_area.chip_cells} extra cells")

    # ---------------- objective (i): area budget ----------------
    optimizer = SocetOptimizer(soc)
    budget = min_area.chip_cells + 30
    plan_i, trajectory = optimizer.minimize_tat(budget)
    print(f"\nobjective (i): best TAT within {budget} cells")
    for step in trajectory:
        print(f"  step {step.index}: {step.chip_cells} cells, {step.tat} cycles   {step.label()}")

    # ---------------- objective (ii): TAT budget ----------------
    target = int(min_area.tat * 0.6)
    plan_ii, trajectory_ii = optimizer.minimize_area(target)
    print(f"\nobjective (ii): least area meeting {target} cycles")
    for step in trajectory_ii:
        print(f"  step {step.index}: {step.chip_cells} cells, {step.tat} cycles   {step.label()}")

    # ---------------- what the test muxes ended up on ----------------
    plan = plan_soc_test(soc)
    print("\nsystem-level test muxes of the minimum-area plan:")
    for mux in plan.test_muxes:
        print(f"  {mux}")


if __name__ == "__main__":
    main()
