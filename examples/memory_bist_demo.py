"""Memory BIST: why the paper leaves the RAM/ROM out of the CCG.

Grades March C-, X, and Y against injected stuck-at and coupling faults
on a behavioral array, then shows the BIST plan for System 1's 4KB
memories.

Run:  python examples/memory_bist_demo.py
"""

from repro.bist import (
    MARCH_C_MINUS,
    MARCH_X,
    MARCH_Y,
    BehavioralMemory,
    CellStuckAt,
    plan_memory_bist,
    run_march,
)
from repro.bist.march import grade_march
from repro.bist.memory import all_stuck_at_faults, neighbour_coupling_faults
from repro.designs import build_system1
from repro.util import render_table


def main():
    words, width = 64, 8

    demo_fault = CellStuckAt(address=17, bit=3, value=1)
    memory = BehavioralMemory(words, width, fault=demo_fault)
    failure = run_march(MARCH_C_MINUS, memory)
    print(f"March C- on a faulty array: first mismatch at {failure}")

    stuck = all_stuck_at_faults(words, width, stride=4)
    coupling = neighbour_coupling_faults(words, width, stride=4)
    rows = []
    for test in (MARCH_C_MINUS, MARCH_X, MARCH_Y):
        s_detected, _ = grade_march(test, words, width, stuck)
        c_detected, _ = grade_march(test, words, width, coupling)
        rows.append(
            [test.name, f"{test.operations_per_word}N",
             f"{100 * s_detected / len(stuck):.0f}%",
             f"{100 * c_detected / len(coupling):.0f}%"]
        )
    print()
    print(render_table(["March test", "length", "stuck-at", "coupling"], rows,
                       title=f"fault grading on a {words}x{width} array"))

    plan = plan_memory_bist(build_system1())
    print()
    for row in plan.rows:
        print(f"{row.core}: {row.words}x{row.width} via {row.march}: "
              f"{row.cycles} cycles, wrapper {row.wrapper_cells} cells")
    print(f"BIST total: {plan.total_cycles} cycles, {plan.total_cells} cells "
          "(runs concurrently with the SOCET logic test)")


if __name__ == "__main__":
    main()
