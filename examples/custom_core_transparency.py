"""Authoring a core and inspecting its transparency structure.

Shows the machinery under the hood: the register connectivity graph
with its C-split/O-split nodes (paper Figure 7), the justification tree
for a split output (the balanced-freeze mechanism of Figure 4b), and a
chip-level CCG built from the synthesized versions (Figure 9).

Run:  python examples/custom_core_transparency.py
"""

from repro.dft import insert_hscan
from repro.rtl import CircuitBuilder, OpKind, Slice
from repro.rtl.types import Concat
from repro.soc import Core, Soc, build_ccg
from repro.soc.ccg import shortest_justification
from repro.transparency import RCG, TransparencySearch, generate_versions


def build_dsp_core():
    """A filter-like core with a C-split coefficient register."""
    b = CircuitBuilder("FILTER")
    din = b.input("SAMPLE", 8)
    ctl = b.input("CTL", 1)
    head = b.register("HEAD", 8)
    tail = b.register("TAIL", 4)  # low half of COEF comes through TAIL
    coef = b.register("COEF", 8)  # C-split: [3:0] <- TAIL, [7:4] <- HEAD
    out = b.register("OUTREG", 8)
    b.drive(head, din)
    b.drive(tail, head.sub(0, 4))
    b.drive(coef, Concat((Slice("TAIL", 0, 4), Slice("HEAD", 4, 4))))
    product = b.op("MAC", OpKind.ADD, [coef, head])
    b.drive(out, b.mux("OUT_MUX", [product, coef], select=ctl))
    b.output("RESULT", out)
    return b.build()


def main():
    circuit = build_dsp_core()
    plan = insert_hscan(circuit)
    rcg = RCG.from_circuit(circuit, plan)

    print("RCG nodes (paper Figure 7 style):")
    for node in rcg.nodes.values():
        tags = []
        if node.c_split:
            tags.append("C-split")
        if node.o_split:
            tags.append("O-split")
        print(f"  {node.name:8s} {node.kind:9s} width={node.width:2d} {' '.join(tags)}")
    print("\nRCG edges (# marks HSCAN edges):")
    for arc in rcg.arcs:
        print(f"  {arc}")

    search = TransparencySearch(rcg)
    path = search.justify(Slice("RESULT", 0, 8))
    assert path is not None
    print(f"\njustify RESULT: latency {path.latency}, "
          f"terminals {[str(t) for t in path.terminals]}")
    for register, cycles in path.freezes:
        print(f"  freeze {register} for {cycles} cycle(s) to balance sub-paths")

    versions = generate_versions(circuit, plan)
    print("\nversions:")
    for version in versions:
        print(f"  {version.name}: justify RESULT = "
              f"{version.justify_latency('RESULT', 0, 8)} cycles, "
              f"{version.extra_cells} cells")

    # ---------------- embed it and build the CCG ----------------
    soc = Soc("demo")
    soc.add_core(Core.from_circuit(circuit, test_vectors=20))
    front = Core.from_circuit(_front_end(), test_vectors=10)
    soc.add_core(front)
    soc.add_input("PIN", 8)
    soc.add_input("PCTL", 1)
    soc.add_output("POUT", 8)
    soc.wire(None, "PIN", "FRONT", "IN")
    soc.wire("FRONT", "OUT", "FILTER", "SAMPLE")
    soc.wire(None, "PCTL", "FILTER", "CTL")
    soc.wire("FILTER", "RESULT", None, "POUT")

    ccg = build_ccg(soc)
    print(f"\nCCG: {ccg.number_of_nodes()} nodes, {ccg.number_of_edges()} edges")
    target = ("CO", "FILTER", "RESULT", 0, 8)
    result = shortest_justification(ccg, target)
    assert result is not None
    cost, nodes = result
    print(f"shortest justification of FILTER.RESULT: {cost} cycles")
    for node in nodes:
        print(f"  {node}")


def _front_end():
    b = CircuitBuilder("FRONT")
    din = b.input("IN", 8)
    reg = b.register("R", 8)
    b.drive(reg, din)
    b.output("OUT", reg)
    return b.build()


if __name__ == "__main__":
    main()
