"""Full SOCET vs FSCAN-BSCAN comparison on System 2 (Tables 2 and 3).

Reproduces, for the graphics + GCD + X.25 system, the paper's two
comparison tables: the area-overhead breakdown and the testability
(fault coverage / test efficiency / test time) rows.

Run:  python examples/system2_report.py          (takes ~a minute)
"""

from repro.designs import build_system2
from repro.flow import (
    evaluate_system,
    render_area_table,
    render_testability_table,
    run_socet,
)
from repro.bist import plan_memory_bist


def main():
    soc = build_system2()
    print(f"{soc.name}: cores = {sorted(soc.cores)}")
    for core in soc.testable_cores():
        versions = ", ".join(f"{v.name}@{v.extra_cells}c" for v in core.versions)
        print(f"  {core.name}: {core.flip_flops} FFs, {core.test_vectors} vectors, "
              f"scan depth {core.scan_depth}; versions: {versions}")

    # ---------------- Table 2: area overheads ----------------
    run = run_socet(soc)
    print()
    print(render_area_table(run.area_rows()))
    print(f"\nFSCAN-BSCAN baseline: {run.baseline.total_tat} cycles, "
          f"{run.baseline.total_cells} DFT cells")
    print(f"SOCET min-area:       {run.min_area_plan.total_tat} cycles, "
          f"{run.min_area_plan.chip_dft_cells} chip-level DFT cells")
    print(f"SOCET min-TApp:       {run.min_tat_plan.total_tat} cycles, "
          f"{run.min_tat_plan.chip_dft_cells} chip-level DFT cells")

    # ---------------- Table 3: testability ----------------
    evaluation = evaluate_system(soc, sequences=16, sequence_length=12, fault_sample=120)
    print()
    print(render_testability_table(evaluation.rows))

    # ---------------- memory BIST (none in System 2) ----------------
    bist = plan_memory_bist(soc)
    if bist.rows:
        for row in bist.rows:
            print(f"BIST {row.core}: {row.march}, {row.cycles} cycles")
    else:
        print("\n(no memory cores; BIST not required)")


if __name__ == "__main__":
    main()
