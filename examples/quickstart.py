"""Quickstart: make one core testable and transparent, end to end.

Builds a small RTL core with the builder DSL, inserts HSCAN, synthesizes
transparency versions, generates its test set with the built-in ATPG,
and verifies the coverage by gate-level fault simulation.

Run:  python examples/quickstart.py
"""

from repro.atpg import CombinationalAtpg
from repro.dft import insert_hscan
from repro.elaborate import elaborate
from repro.rtl import CircuitBuilder, OpKind
from repro.transparency import generate_versions
from repro.util import render_table


def build_accumulator():
    """An 8-bit accumulate-and-report core: IN -> STAGE -> ACC -> OUT."""
    b = CircuitBuilder("ACCUM")
    din = b.input("IN", 8)
    mode = b.input("MODE", 1)
    stage = b.register("STAGE", 8)
    acc = b.register("ACC", 8)
    b.drive(stage, din)
    total = b.op("SUM", OpKind.ADD, [acc, stage])
    b.drive(acc, b.mux("ACC_MUX", [total, stage], select=mode))
    b.output("OUT", acc)
    return b.build()


def main():
    circuit = build_accumulator()
    print(f"core {circuit.name!r}: {circuit.flip_flop_count()} flip-flops")

    # 1. core-level DFT: HSCAN chains from existing paths
    plan = insert_hscan(circuit)
    print(f"\nHSCAN: depth={plan.depth}, extra area={plan.extra_area} cells")
    for chain in plan.chains:
        print("  chain:", " -> ".join(str(unit) for unit in chain))

    # 2. transparency versions (latency vs area)
    versions = generate_versions(circuit, plan)
    rows = []
    for version in versions:
        justify = version.justify_latency("OUT", 0, 8)
        propagate = version.propagate_paths["IN"].latency
        rows.append([version.name, justify, propagate, version.extra_cells])
    print()
    print(render_table(["version", "justify OUT", "propagate IN", "cells"], rows,
                       title="transparency versions"))

    # 3. test generation + measured coverage
    netlist = elaborate(circuit).netlist
    outcome = CombinationalAtpg(netlist, seed=0).run()
    report = outcome.report
    print(
        f"\nATPG: {len(outcome.patterns)} vectors, "
        f"fault coverage {report.fault_coverage:.1f}%, "
        f"test efficiency {report.test_efficiency:.1f}% "
        f"({report.redundant} redundant, {report.aborted} aborted of {report.total})"
    )


if __name__ == "__main__":
    main()
